package svm

import (
	"math"
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

func TestSVRLinearRecoversLine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 60
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		x.Set(i, 0, v)
		y[i] = 3*v + 7 + 0.05*rng.NormFloat64()
	}
	m := &SVR{Kernel: Linear}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2, 5, 8} {
		want := 3*v + 7
		if got := m.Predict([]float64{v}); math.Abs(got-want) > 0.5 {
			t.Fatalf("Predict(%v) = %v, want ≈%v", v, got, want)
		}
	}
}

func TestSVRRBFFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 120
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 6
		x.Set(i, 0, v)
		y[i] = math.Sin(v) * 4
	}
	m := &SVR{C: 50, Epsilon: 0.01}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sse := 0.0
	for i := 0; i < n; i++ {
		d := m.Predict(x.RawRow(i)) - y[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / float64(n)); rmse > 0.4 {
		t.Fatalf("RBF training RMSE = %v, want < 0.4", rmse)
	}
}

func TestSVREpsilonSparsity(t *testing.T) {
	// Epsilon is measured on the standardized target (σ units): a tube of
	// ±3σ swallows essentially every point, so almost nothing becomes a
	// support vector and the prediction collapses to the mean.
	rng := rand.New(rand.NewPCG(5, 6))
	n := 50
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		y[i] = 100 + 0.01*rng.NormFloat64()
	}
	m := &SVR{Epsilon: 3.0}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if nsv := m.NumSupportVectors(); nsv > 5 {
		t.Fatalf("±3σ-tube SVR has %d support vectors, want ≤5", nsv)
	}
	if got := m.Predict([]float64{0.5}); math.Abs(got-100) > 1 {
		t.Fatalf("Predict = %v, want ≈100", got)
	}
}

func TestSVRScaleInvariance(t *testing.T) {
	// Internal standardization: the fit quality must not depend on the
	// raw scale of x or y.
	rng := rand.New(rand.NewPCG(7, 8))
	n := 60
	xs := mat.New(n, 1)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()
		xs.Set(i, 0, v*1e6)
		ys[i] = v*5e4 + 1e5
	}
	m := &SVR{}
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{0.5e6})
	want := 0.5*5e4 + 1e5
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("Predict = %v, want ≈%v", got, want)
	}
}

func TestSVRErrors(t *testing.T) {
	m := &SVR{}
	if err := m.Fit(mat.New(0, 1), nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if err := m.Fit(mat.New(2, 1), []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unfitted Predict must panic")
		}
	}()
	(&SVR{}).Predict([]float64{1})
}
