package lmm

import (
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

// BenchmarkFitLMM measures repeated EM fits of the mixed model on one
// instance: the per-group E step (ZΨZᵀ, inverse, conditional covariance)
// is the allocation hot path the in-place kernels target.
func BenchmarkFitLMM(b *testing.B) {
	const n, c, groups = 96, 3, 4
	rng := rand.New(rand.NewPCG(7, 0x1e44))
	x := mat.New(n, c)
	y := make([]float64, n)
	g := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		g[i] = i % groups
		y[i] = 2*x.At(i, 0) + float64(g[i])*0.5 + 0.1*rng.NormFloat64()
	}
	m := &LMM{Groups: g, MaxIter: 25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
