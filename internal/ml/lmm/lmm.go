// Package lmm implements a linear mixed-effects model with per-group
// random intercepts and slopes, fit by expectation-maximization. It is the
// LMM strategy of §6.1.2: fixed effects capture the population-level
// scaling trend while the random effects absorb group-specific variation
// (the time-of-day data groups of the study).
package lmm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wpred/internal/mat"
)

// LMM is the mixed model y = X̃β + Z·b_g + ε with X̃ = [1 X], Z = X̃,
// b_g ~ N(0, Ψ), ε ~ N(0, σ²).
type LMM struct {
	// Groups assigns each training row to a cluster; it must be set
	// before Fit. Rows with group −1 contribute only to the fixed
	// effects.
	Groups []int
	// MaxIter bounds EM (default 100).
	MaxIter int
	// Tol is the convergence tolerance on parameter change (default 1e-6).
	Tol float64

	beta    []float64         // fixed effects (with intercept)
	randEff map[int][]float64 // posterior mean b̂_g per group
	psi     *mat.Dense        // random-effect covariance
	sigma2  float64           // residual variance
	nAug    int               // len(beta)
	fitted  bool
	ws      mat.Workspace // EM scratch, reused across Fit calls
}

func (m *LMM) params() (iters int, tol float64) {
	iters = m.MaxIter
	if iters == 0 {
		iters = 100
	}
	tol = m.Tol
	if tol == 0 {
		tol = 1e-6
	}
	return iters, tol
}

func augment(x []float64) []float64 {
	out := make([]float64, len(x)+1)
	out[0] = 1
	copy(out[1:], x)
	return out
}

// Fit runs EM. With no group structure (all groups identical or absent) it
// degenerates gracefully to OLS with a vanishing random-effect covariance.
func (m *LMM) Fit(X *mat.Dense, y []float64) error {
	r, c := X.Dims()
	if r != len(y) {
		return fmt.Errorf("lmm: %d rows but %d targets", r, len(y))
	}
	if r == 0 {
		return errors.New("lmm: empty training set")
	}
	groups := m.Groups
	if len(groups) == 0 {
		groups = make([]int, r) // single group
	}
	if len(groups) != r {
		return fmt.Errorf("lmm: %d rows but %d group labels", r, len(groups))
	}
	iters, tol := m.params()
	q := c + 1
	m.nAug = q

	// Group row indices. The EM loop iterates groups in sorted order:
	// float accumulation over randomized map order would make repeated
	// fits differ in the last bits.
	rowsOf := map[int][]int{}
	for i, g := range groups {
		if g >= 0 {
			rowsOf[g] = append(rowsOf[g], i)
		}
	}
	groupIDs := make([]int, 0, len(rowsOf))
	for g := range rowsOf {
		groupIDs = append(groupIDs, g)
	}
	sort.Ints(groupIDs)

	// Design with intercept, built row-by-row from workspace storage.
	ws := &m.ws
	nG := len(groupIDs)
	xa := ws.GetMatrix(r, q)
	defer ws.PutMatrix(xa)
	for i := 0; i < r; i++ {
		row := xa.RawRow(i)
		row[0] = 1
		copy(row[1:], X.RawRow(i))
	}

	// The M step solves the same normal equations xaᵀxa·β = xaᵀrhs every
	// iteration: xa never changes, so factor the Gram matrix ONCE and reuse
	// the Cholesky factor for every solve. When the plain factorization
	// fails we fall back to the full least-squares path (ridge ladder) per
	// call, which is exactly what SolveLeastSquares did every iteration.
	ata := ws.GetMatrix(q, q)
	defer ws.PutMatrix(ata)
	mat.SymRankKInto(ata, xa)
	chol := ws.GetMatrix(q, q)
	defer ws.PutMatrix(chol)
	atb := ws.GetVector(q)
	defer ws.PutVector(atb)
	solveScratch := ws.GetVector(q)
	defer ws.PutVector(solveScratch)
	cholOK := mat.CholeskyInto(chol, ata) == nil
	solve := func(dst, rhs []float64) error {
		if cholOK {
			mat.MulTransVecInto(atb, xa, rhs)
			mat.CholSolveInto(dst, chol, atb, solveScratch)
			return nil
		}
		return mat.SolveLeastSquaresInto(dst, xa, rhs, ws)
	}

	// Initialize with OLS. beta/newBeta and psi/newPsi are double buffers
	// swapped each iteration; they are freshly allocated per fit because
	// they survive as m.beta/m.psi after Fit returns.
	beta := make([]float64, q)
	newBeta := make([]float64, q)
	if err := solve(beta, y); err != nil {
		return err
	}
	resid := residuals(xa, y, beta)
	sigma2 := meanSq(resid)
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	psi := mat.New(q, q)
	newPsi := mat.New(q, q)
	for i := 0; i < q; i++ {
		psi.Set(i, i, sigma2)
	}

	// Per-group design blocks Z depend only on the grouping, not the EM
	// state: build them once, outside the loop. condCov buffers persist
	// from the E step into the Ψ update of the same iteration.
	zs := make([]*mat.Dense, nG)
	condCov := make([]*mat.Dense, nG)
	bhat := map[int][]float64{}
	for gi, g := range groupIDs {
		rows := rowsOf[g]
		z := ws.GetMatrix(len(rows), q)
		for k, i := range rows {
			copy(z.RawRow(k), xa.RawRow(i))
		}
		zs[gi] = z
		condCov[gi] = ws.GetMatrix(q, q)
		bhat[g] = make([]float64, q)
	}
	defer func() {
		for gi := nG - 1; gi >= 0; gi-- {
			ws.PutMatrix(condCov[gi])
			ws.PutMatrix(zs[gi])
		}
	}()
	adj := ws.GetVector(r)
	defer ws.PutVector(adj)

	for iter := 0; iter < iters; iter++ {
		// E step per group. Scratch is borrowed per group and returned at
		// the end of the block; buffer capacities ratchet up to the largest
		// group during the first iteration and reuse thereafter.
		for gi, g := range groupIDs {
			rows := rowsOf[g]
			ng := len(rows)
			z := zs[gi]
			rg := ws.GetVector(ng)
			for k, i := range rows {
				rg[k] = y[i] - mat.Dot(xa.RawRow(i), beta)
			}
			// V = ZΨZᵀ + σ²I. ZΨZᵀ is NOT exactly symmetric in floating
			// point, so it must be computed with the same orientation as
			// the original Mul(Mul(z, psi), z.T()) chain — a symmetric
			// rank-k kernel here would change low-order bits.
			zp := ws.GetMatrix(ng, q)
			mat.MulInto(zp, z, psi)
			v := ws.GetMatrix(ng, ng)
			mat.MulTransBInto(v, zp, z)
			for i := 0; i < ng; i++ {
				v.Set(i, i, v.At(i, i)+sigma2)
			}
			vInv := ws.GetMatrix(ng, ng)
			if err := mat.InverseInto(vInv, v, ws); err != nil {
				return fmt.Errorf("lmm: singular marginal covariance for group %d: %w", g, err)
			}
			pzt := ws.GetMatrix(q, ng)
			mat.MulTransBInto(pzt, psi, z) // ΨZᵀ
			pv := ws.GetMatrix(q, ng)
			mat.MulInto(pv, pzt, vInv)
			pv.MulVecInto(bhat[g], rg)
			// C = Ψ − ΨZᵀV⁻¹ZΨ
			tmp := ws.GetMatrix(q, q)
			mat.MulTransBInto(tmp, pv, pzt)
			mat.SubInto(condCov[gi], psi, tmp)
			ws.PutMatrix(tmp)
			ws.PutMatrix(pv)
			ws.PutMatrix(pzt)
			ws.PutMatrix(vInv)
			ws.PutMatrix(v)
			ws.PutMatrix(zp)
			ws.PutVector(rg)
		}

		// M step: β from residuals after subtracting random effects.
		for i := 0; i < r; i++ {
			adj[i] = y[i]
			if bg, ok := bhat[groups[i]]; ok && groups[i] >= 0 {
				adj[i] -= mat.Dot(xa.RawRow(i), bg)
			}
		}
		if err := solve(newBeta, adj); err != nil {
			return err
		}

		// σ² and Ψ updates.
		sse := 0.0
		for gi, g := range groupIDs {
			rows := rowsOf[g]
			bg := bhat[g]
			for _, i := range rows {
				e := y[i] - mat.Dot(xa.RawRow(i), newBeta) - mat.Dot(xa.RawRow(i), bg)
				sse += e * e
			}
			// Trace term tr(Z C Zᵀ): only the diagonal of ZCZᵀ is needed,
			// so compute ZC and accumulate each row's dot with the matching
			// Z row — same contributions in the same order as the full
			// product's diagonal, at O(ng·q) instead of O(ng²·q).
			z := zs[gi]
			ng := len(rows)
			zc := ws.GetMatrix(ng, q)
			mat.MulInto(zc, z, condCov[gi])
			for i := 0; i < ng; i++ {
				zrow := z.RawRow(i)
				s := 0.0
				for k, cv := range zc.RawRow(i) {
					if cv == 0 {
						continue
					}
					s += cv * zrow[k]
				}
				sse += s
			}
			ws.PutMatrix(zc)
		}
		// Rows outside any group contribute plain residuals.
		for i, g := range groups {
			if g < 0 {
				e := y[i] - mat.Dot(xa.RawRow(i), newBeta)
				sse += e * e
			}
		}
		newSigma2 := sse / float64(r)
		if newSigma2 < 1e-12 {
			newSigma2 = 1e-12
		}

		for i := range newPsi.Data() {
			newPsi.Data()[i] = 0
		}
		if nG > 0 {
			for gi, g := range groupIDs {
				bg := bhat[g]
				cc := condCov[gi]
				for a := 0; a < q; a++ {
					for b := 0; b < q; b++ {
						newPsi.Set(a, b, newPsi.At(a, b)+bg[a]*bg[b]+cc.At(a, b))
					}
				}
			}
			mat.ScaleInto(newPsi, 1/float64(nG), newPsi)
		}
		// Keep Ψ from collapsing to exact singularity.
		for i := 0; i < q; i++ {
			newPsi.Set(i, i, newPsi.At(i, i)+1e-10)
		}

		delta := math.Abs(newSigma2 - sigma2)
		for j := range beta {
			delta += math.Abs(newBeta[j] - beta[j])
		}
		beta, newBeta = newBeta, beta
		psi, newPsi = newPsi, psi
		sigma2 = newSigma2
		if delta < tol {
			break
		}
	}

	m.beta = beta
	m.sigma2 = sigma2
	m.psi = psi
	m.randEff = bhat
	m.fitted = true
	return nil
}

func residuals(x *mat.Dense, y, beta []float64) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		out[i] = y[i] - mat.Dot(x.RawRow(i), beta)
	}
	return out
}

func meanSq(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if len(v) == 0 {
		return 0
	}
	return s / float64(len(v))
}

// Predict returns the population-level (fixed effects only) prediction,
// the right call for data whose group is unknown.
func (m *LMM) Predict(x []float64) float64 {
	if !m.fitted {
		panic(errors.New("lmm: model is not fitted"))
	}
	return mat.Dot(augment(x), m.beta)
}

// PredictGroup adds the posterior random effect of a known group; unknown
// groups fall back to the population prediction.
func (m *LMM) PredictGroup(x []float64, group int) float64 {
	pred := m.Predict(x)
	if bg, ok := m.randEff[group]; ok {
		pred += mat.Dot(augment(x), bg)
	}
	return pred
}

// PredictInterval returns the population prediction with an approximate
// 95% interval from the random-effect and residual variances — the shaded
// band of Figure 8.
func (m *LMM) PredictInterval(x []float64) (pred, lo, hi float64) {
	pred = m.Predict(x)
	xa := augment(x)
	v := m.sigma2
	pz := m.psi.MulVec(xa)
	v += mat.Dot(xa, pz)
	half := 1.96 * math.Sqrt(math.Max(v, 0))
	return pred, pred - half, pred + half
}

// FixedEffects returns the fitted fixed-effect coefficients (intercept
// first).
func (m *LMM) FixedEffects() []float64 { return append([]float64(nil), m.beta...) }

// ResidualVariance returns σ².
func (m *LMM) ResidualVariance() float64 { return m.sigma2 }
