package lmm

import (
	"math"
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

// groupedData draws y = 2 + 3x + b_g + ε with per-group intercept shifts.
func groupedData(nPerGroup int, offsets []float64, seed uint64) (*mat.Dense, []float64, []int) {
	rng := rand.New(rand.NewPCG(seed, seed*7+1))
	n := nPerGroup * len(offsets)
	x := mat.New(n, 1)
	y := make([]float64, n)
	groups := make([]int, n)
	i := 0
	for g, off := range offsets {
		for k := 0; k < nPerGroup; k++ {
			v := rng.Float64() * 10
			x.Set(i, 0, v)
			y[i] = 2 + 3*v + off + 0.1*rng.NormFloat64()
			groups[i] = g
			i++
		}
	}
	return x, y, groups
}

func TestLMMRecoversFixedEffects(t *testing.T) {
	x, y, groups := groupedData(30, []float64{-2, 0, 2}, 1)
	m := &LMM{Groups: groups}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	fe := m.FixedEffects()
	if math.Abs(fe[1]-3) > 0.1 {
		t.Fatalf("slope = %v, want ≈3", fe[1])
	}
	// Population intercept ≈ 2 (group offsets average to zero).
	if math.Abs(fe[0]-2) > 0.7 {
		t.Fatalf("intercept = %v, want ≈2", fe[0])
	}
}

func TestLMMGroupPredictionBeatsPopulation(t *testing.T) {
	x, y, groups := groupedData(30, []float64{-4, 0, 4}, 2)
	m := &LMM{Groups: groups}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// For a point in group 0 (offset −4) the group-aware prediction must
	// be closer than the population one.
	probe := []float64{5}
	truth := 2 + 3*5 - 4.0
	pop := math.Abs(m.Predict(probe) - truth)
	grp := math.Abs(m.PredictGroup(probe, 0) - truth)
	if grp >= pop {
		t.Fatalf("group prediction error %v should beat population %v", grp, pop)
	}
	// Unknown groups fall back to the population prediction.
	if m.PredictGroup(probe, 99) != m.Predict(probe) {
		t.Fatal("unknown group must fall back to fixed effects")
	}
}

func TestLMMPredictInterval(t *testing.T) {
	x, y, groups := groupedData(25, []float64{-3, 0, 3}, 3)
	m := &LMM{Groups: groups}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred, lo, hi := m.PredictInterval([]float64{5})
	if !(lo < pred && pred < hi) {
		t.Fatalf("interval (%v,%v,%v) malformed", lo, pred, hi)
	}
	// The group spread (±3) must be inside the 95% band.
	if hi-lo < 3 {
		t.Fatalf("interval width %v too narrow for the group spread", hi-lo)
	}
}

func TestLMMWithoutGroupsDegeneratesToOLS(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	n := 50
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		x.Set(i, 0, v)
		y[i] = 1 + 2*v
	}
	m := &LMM{} // no groups: single cluster
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{4}); math.Abs(got-9) > 0.3 {
		t.Fatalf("Predict(4) = %v, want ≈9", got)
	}
	if m.ResidualVariance() < 0 {
		t.Fatal("negative residual variance")
	}
}

func TestLMMErrors(t *testing.T) {
	m := &LMM{}
	if err := m.Fit(mat.New(0, 1), nil); err == nil {
		t.Fatal("empty training set must error")
	}
	m2 := &LMM{Groups: []int{0}}
	if err := m2.Fit(mat.NewFromRows([][]float64{{1}, {2}}), []float64{1, 2}); err == nil {
		t.Fatal("group length mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unfitted Predict must panic")
		}
	}()
	(&LMM{}).Predict([]float64{1})
}
