package mars

import (
	"math"
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

func TestMARSRecoversHinge(t *testing.T) {
	// y = 2·max(0, x−5): MARS's native basis function.
	n := 80
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / 8
		x.Set(i, 0, v)
		y[i] = 2 * math.Max(0, v-5)
	}
	m := &MARS{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 4, 6, 9} {
		want := 2 * math.Max(0, v-5)
		if got := m.Predict([]float64{v}); math.Abs(got-want) > 0.15 {
			t.Fatalf("Predict(%v) = %v, want ≈%v", v, got, want)
		}
	}
}

func TestMARSLinearData(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	n := 60
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		x.Set(i, 0, v)
		y[i] = 4*v - 1
	}
	m := &MARS{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{5}); math.Abs(got-19) > 0.5 {
		t.Fatalf("Predict(5) = %v, want ≈19", got)
	}
}

func TestMARSPruningBoundsTerms(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	n := 100
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		x.Set(i, 0, v)
		y[i] = v + rng.NormFloat64() // linear plus noise: extra knots are spurious
	}
	m := &MARS{MaxTerms: 11}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if m.NumTerms() > 11 {
		t.Fatalf("terms = %d exceeds MaxTerms", m.NumTerms())
	}
	if m.NumTerms() < 1 {
		t.Fatal("must keep at least the intercept")
	}
}

func TestMARSMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	n := 150
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Max(0, a-3) - 2*math.Max(0, 6-b)
	}
	m := &MARS{MaxTerms: 9}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sse := 0.0
	for i := 0; i < n; i++ {
		d := m.Predict(x.RawRow(i)) - y[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / float64(n)); rmse > 0.8 {
		t.Fatalf("training RMSE = %v", rmse)
	}
}

func TestMARSErrors(t *testing.T) {
	m := &MARS{}
	if err := m.Fit(mat.New(0, 1), nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if err := m.Fit(mat.New(2, 1), []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unfitted Predict must panic")
		}
	}()
	(&MARS{}).Predict([]float64{1})
}
