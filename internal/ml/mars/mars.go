// Package mars implements Multivariate Adaptive Regression Splines
// (Friedman 1991): a forward pass that greedily adds mirrored hinge pairs
// max(0, x−t) / max(0, t−x), followed by a backward pruning pass scored by
// generalized cross validation (GCV). The result is the piecewise-linear
// fit the paper lists among its non-linear scaling-model strategies.
package mars

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wpred/internal/mat"
)

// basis is one basis function: a product of hinge terms (depth 1 here —
// additive MARS, which matches the univariate-SKU modeling task).
type basis struct {
	feature   int
	knot      float64
	mirrored  bool // true: max(0, knot−x); false: max(0, x−knot)
	intercept bool
}

func (b basis) eval(x []float64) float64 {
	if b.intercept {
		return 1
	}
	v := x[b.feature] - b.knot
	if b.mirrored {
		v = -v
	}
	if v < 0 {
		return 0
	}
	return v
}

// MARS is the spline regressor.
type MARS struct {
	// MaxTerms bounds the forward pass (default 11 including the
	// intercept).
	MaxTerms int
	// Penalty is the GCV cost per knot (default 3, Friedman's
	// recommendation for additive models).
	Penalty float64

	terms  []basis
	coef   []float64
	fitted bool
	ws     mat.Workspace // refit scratch shared across the forward/pruning passes
}

func (m *MARS) params() (maxTerms int, penalty float64) {
	maxTerms = m.MaxTerms
	if maxTerms == 0 {
		maxTerms = 11
	}
	penalty = m.Penalty
	if penalty == 0 {
		penalty = 3
	}
	return maxTerms, penalty
}

// Fit runs the forward and pruning passes.
func (m *MARS) Fit(X *mat.Dense, y []float64) error {
	r, c := X.Dims()
	if r != len(y) {
		return fmt.Errorf("mars: %d rows but %d targets", r, len(y))
	}
	if r == 0 {
		return errors.New("mars: empty training set")
	}
	maxTerms, penalty := m.params()

	terms := []basis{{intercept: true}}
	// Candidate knots: distinct values per feature.
	knots := make([][]float64, c)
	for j := 0; j < c; j++ {
		col := X.Col(j)
		sort.Float64s(col)
		uniq := col[:0]
		for i, v := range col {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		knots[j] = append([]float64(nil), uniq...)
	}

	// Forward pass: add the hinge pair that most reduces SSE.
	for len(terms) < maxTerms {
		bestSSE := math.Inf(1)
		var bestPair []basis
		for j := 0; j < c; j++ {
			for _, t := range knots[j] {
				cand := append(append([]basis(nil), terms...),
					basis{feature: j, knot: t},
					basis{feature: j, knot: t, mirrored: true})
				_, sse, err := fitCoef(cand, X, y, &m.ws)
				if err != nil {
					continue
				}
				if sse < bestSSE-1e-12 {
					bestSSE = sse
					bestPair = cand
				}
			}
		}
		if bestPair == nil {
			break
		}
		// Require meaningful improvement to avoid degenerate knots.
		_, curSSE, err := fitCoef(terms, X, y, &m.ws)
		if err == nil && bestSSE > curSSE*(1-1e-6) {
			break
		}
		terms = bestPair
	}

	// Backward pruning by GCV.
	bestTerms := terms
	bestGCV := gcvScore(terms, X, y, penalty, &m.ws)
	pruned := terms
	for len(pruned) > 1 {
		bestSub := []basis(nil)
		bestSubGCV := math.Inf(1)
		for drop := 1; drop < len(pruned); drop++ { // never drop the intercept
			sub := make([]basis, 0, len(pruned)-1)
			sub = append(sub, pruned[:drop]...)
			sub = append(sub, pruned[drop+1:]...)
			g := gcvScore(sub, X, y, penalty, &m.ws)
			if g < bestSubGCV {
				bestSubGCV = g
				bestSub = sub
			}
		}
		if bestSub == nil {
			break
		}
		pruned = bestSub
		if bestSubGCV < bestGCV {
			bestGCV = bestSubGCV
			bestTerms = pruned
		}
	}

	coef, _, err := fitCoef(bestTerms, X, y, &m.ws)
	if err != nil {
		return err
	}
	m.terms = bestTerms
	m.coef = coef
	m.fitted = true
	return nil
}

// fitCoef solves the least-squares fit for one candidate term set. The
// design matrix, solver scratch, and prediction buffer are all borrowed
// from ws: the forward pass calls this for every candidate knot, so the
// per-call allocation is just the returned coefficient slice.
func fitCoef(terms []basis, X *mat.Dense, y []float64, ws *mat.Workspace) (coef []float64, sse float64, err error) {
	r := X.Rows()
	d := ws.GetMatrix(r, len(terms))
	defer ws.PutMatrix(d)
	for i := 0; i < r; i++ {
		row := X.RawRow(i)
		drow := d.RawRow(i)
		for k, t := range terms {
			drow[k] = t.eval(row)
		}
	}
	coef = make([]float64, len(terms))
	if err = mat.SolveLeastSquaresInto(coef, d, y, ws); err != nil {
		return nil, 0, err
	}
	pred := ws.GetVector(r)
	defer ws.PutVector(pred)
	d.MulVecInto(pred, coef)
	for i, p := range pred {
		diff := y[i] - p
		sse += diff * diff
	}
	return coef, sse, nil
}

func gcvScore(terms []basis, X *mat.Dense, y []float64, penalty float64, ws *mat.Workspace) float64 {
	_, sse, err := fitCoef(terms, X, y, ws)
	if err != nil {
		return math.Inf(1)
	}
	n := float64(len(y))
	// Effective parameters: terms plus penalty per knot.
	knotCount := float64(len(terms) - 1)
	eff := float64(len(terms)) + penalty*knotCount/2
	denom := 1 - eff/n
	if denom <= 0 {
		return math.Inf(1)
	}
	return sse / n / (denom * denom)
}

// Predict evaluates the fitted spline at x.
func (m *MARS) Predict(x []float64) float64 {
	if !m.fitted {
		panic(errors.New("mars: model is not fitted"))
	}
	out := 0.0
	for k, t := range m.terms {
		out += m.coef[k] * t.eval(x)
	}
	return out
}

// NumTerms returns the number of basis functions after pruning (including
// the intercept).
func (m *MARS) NumTerms() int { return len(m.terms) }
