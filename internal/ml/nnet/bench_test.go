package nnet

import (
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

// BenchmarkFitMLP measures repeated full-batch Adam training runs on one
// model instance; the per-sample activation and gradient buffers are the
// allocation hot path.
func BenchmarkFitMLP(b *testing.B) {
	const n, c = 60, 6
	rng := rand.New(rand.NewPCG(11, 0x9a7))
	x := mat.New(n, c)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = x.At(i, 0) - x.At(i, 1) + 0.05*rng.NormFloat64()
	}
	m := &MLP{Hidden: []int{16, 16}, Epochs: 40, Standardize: true, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
