package nnet

import (
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
	"wpred/internal/parallel"
)

// TestMLPWorkerCountBitIdentity: at one worker Fit takes the inline
// shared-buffer path, at eight the two-phase parallel batch path — the
// trained weights must be bit-identical either way, and refitting a warm
// model (recycled workspace buffers) must reproduce them again.
func TestMLPWorkerCountBitIdentity(t *testing.T) {
	prevGate := mlpParallelMinRows
	mlpParallelMinRows = 16
	defer func() { mlpParallelMinRows = prevGate }()

	const n, c = 96, 5
	rng := rand.New(rand.NewPCG(3, 0xabc))
	x := mat.New(n, c)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = 2*x.At(i, 0) - x.At(i, 3) + 0.05*rng.NormFloat64()
	}

	newModel := func() *MLP {
		return &MLP{Hidden: []int{16, 16}, Epochs: 40, Standardize: true, Seed: 11}
	}
	fitSnap := func(m *MLP) []float64 {
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var out []float64
		for l := range m.weights {
			out = append(out, m.weights[l].Data()...)
			out = append(out, m.biases[l]...)
		}
		return out
	}

	prev := parallel.SetMaxWorkers(1)
	ref := fitSnap(newModel())

	parallel.SetMaxWorkers(8)
	m8 := newModel()
	got := fitSnap(m8)
	refit := fitSnap(m8)
	parallel.SetMaxWorkers(prev)

	if len(got) != len(ref) || len(refit) != len(ref) {
		t.Fatalf("parameter counts diverge: %d %d %d", len(ref), len(got), len(refit))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("param %d: 8-worker fit %v != 1-worker fit %v", i, got[i], ref[i])
		}
		if refit[i] != ref[i] {
			t.Fatalf("param %d: refit on recycled workspace %v != fresh fit %v", i, refit[i], ref[i])
		}
	}
}
