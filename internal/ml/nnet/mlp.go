// Package nnet implements a multi-layer perceptron regressor trained with
// Adam, matching the paper's setup (a 6-layer Scikit-Learn MLPRegressor).
// The paper's Table 6 shows it performing far worse than the simple models
// on the tiny scaling datasets — reproducing that failure mode requires a
// faithful implementation, not a better-tuned one.
package nnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"wpred/internal/mat"
	"wpred/internal/ml"
	"wpred/internal/parallel"
)

// mlpParallelMinRows gates the parallel batch path: epochs fan the
// per-sample forward/backward passes out across the worker pool only for
// batches at least this large, because below it the fan-out bookkeeping
// (and its per-epoch closure allocations) costs more than the math. The
// parallel path is bit-identical to the inline one — phase one computes
// each sample's activations and deltas into its own matrix row (disjoint
// writes, deterministic per sample) and phase two accumulates gradients
// serially in exactly the inline loop's sample/layer/unit order — so the
// threshold affects speed only, never the fit. Variable (not const) so
// tests can lower it to exercise the parallel path on small fixtures.
var mlpParallelMinRows = 256

// mlpBlockRows is the fan-out granularity of the parallel batch path;
// block boundaries depend only on the row count, never the worker count.
const mlpBlockRows = 64

// MLP is a fully-connected feed-forward regressor with ReLU activations.
type MLP struct {
	// Hidden lists the hidden-layer widths; nil selects six layers of 50
	// units (the paper specifies "6 layers"; the width keeps training
	// tractable on the study's tiny datasets).
	Hidden []int
	// Epochs of full-batch Adam (default 200, Scikit-Learn's max_iter).
	Epochs int
	// LearningRate for Adam (default 1e-3).
	LearningRate float64
	// Standardize scales inputs and target to zero mean / unit variance
	// before training. Scikit-Learn's MLPRegressor does NOT do this, and
	// the paper's NNet rows inherit the resulting failure on raw
	// throughput targets — so the default here is false for fidelity.
	// Set it to true when you actually want a usable network.
	Standardize bool
	// Seed controls weight initialization.
	Seed uint64

	weights []*mat.Dense // per layer: out×in
	biases  [][]float64
	std     *ml.Standardizer
	yMean   float64
	yScale  float64
	fitted  bool
	ws      mat.Workspace // training scratch, reused across Fit calls
}

func (m *MLP) params() (hidden []int, epochs int, lr float64) {
	hidden = m.Hidden
	if len(hidden) == 0 {
		hidden = []int{50, 50, 50, 50, 50, 50}
	}
	epochs = m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	lr = m.LearningRate
	if lr == 0 {
		lr = 1e-3
	}
	return hidden, epochs, lr
}

// Fit trains the network with full-batch Adam on standardized inputs and
// target.
func (m *MLP) Fit(X *mat.Dense, y []float64) error {
	r, c := X.Dims()
	if r != len(y) {
		return fmt.Errorf("nnet: %d rows but %d targets", r, len(y))
	}
	if r == 0 {
		return errors.New("nnet: empty training set")
	}
	hidden, epochs, lr := m.params()

	ws := &m.ws
	var xs *mat.Dense
	ys := ws.GetVector(r)
	defer ws.PutVector(ys)
	if m.Standardize {
		m.std = ml.FitStandardizer(X)
		sx := ws.GetMatrix(r, c)
		defer ws.PutMatrix(sx)
		xs = m.std.TransformInto(sx, X)
		m.yMean, m.yScale = meanStd(y)
		for i, v := range y {
			ys[i] = (v - m.yMean) / m.yScale
		}
	} else {
		m.std = nil
		m.yMean, m.yScale = 0, 1
		xs = X // read-only below, no copy needed
		copy(ys, y)
	}

	sizes := append(append([]int{c}, hidden...), 1)
	nLayers := len(sizes) - 1
	rng := rand.New(rand.NewPCG(m.Seed, m.Seed^0x5eed))
	// Weights and biases persist as model state, so they are model-owned
	// (not workspace-borrowed) and recycled across fits when shapes allow.
	if len(m.weights) != nLayers {
		m.weights = make([]*mat.Dense, nLayers)
		m.biases = make([][]float64, nLayers)
	}
	for l := 0; l < nLayers; l++ {
		in, out := sizes[l], sizes[l+1]
		if m.weights[l] == nil {
			m.weights[l] = mat.New(out, in)
		} else {
			m.weights[l].Reset(out, in)
		}
		w := m.weights[l]
		scale := math.Sqrt(2 / float64(in)) // He initialization for ReLU
		for i := 0; i < out; i++ {
			for j := 0; j < in; j++ {
				w.Set(i, j, rng.NormFloat64()*scale)
			}
		}
		if cap(m.biases[l]) < out {
			m.biases[l] = make([]float64, out)
		} else {
			m.biases[l] = m.biases[l][:out]
			for i := range m.biases[l] {
				m.biases[l][i] = 0
			}
		}
	}

	// Adam state (borrowed zeroed from the workspace, as Adam starts from
	// zero moments each fit).
	mw := make([]*mat.Dense, nLayers)
	vw := make([]*mat.Dense, nLayers)
	mb := make([][]float64, nLayers)
	vb := make([][]float64, nLayers)
	gw := make([]*mat.Dense, nLayers)
	gb := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		o, in := m.weights[l].Dims()
		mw[l], vw[l], gw[l] = ws.GetMatrix(o, in), ws.GetMatrix(o, in), ws.GetMatrix(o, in)
		mb[l], vb[l], gb[l] = ws.GetVector(o), ws.GetVector(o), ws.GetVector(o)
	}
	defer func() {
		for l := nLayers - 1; l >= 0; l-- {
			ws.PutVector(gb[l])
			ws.PutVector(vb[l])
			ws.PutVector(mb[l])
			ws.PutMatrix(gw[l])
			ws.PutMatrix(vw[l])
			ws.PutMatrix(mw[l])
		}
	}()
	// ONE set of per-layer activation / pre-activation buffers, shared by
	// every sample: the forward pass fully overwrites them and the backward
	// pass consumes them before the next sample, so per-sample storage
	// (r copies) would be pure waste. acts[0] is repointed at the current
	// sample's input row each step.
	acts := make([][]float64, nLayers+1)
	pre := make([][]float64, nLayers)
	for l := 0; l < nLayers; l++ {
		pre[l] = ws.GetVector(sizes[l+1])
		acts[l+1] = ws.GetVector(sizes[l+1])
	}
	// Back-propagation delta buffers, one per layer width.
	deltas := make([][]float64, nLayers+1)
	for l := 0; l <= nLayers; l++ {
		deltas[l] = ws.GetVector(sizes[l])
	}
	defer func() {
		for l := nLayers; l >= 0; l-- {
			ws.PutVector(deltas[l])
		}
		for l := nLayers - 1; l >= 0; l-- {
			ws.PutVector(acts[l+1])
			ws.PutVector(pre[l])
		}
	}()

	// Large batches run each epoch's per-sample passes on the worker pool:
	// phase one stores every sample's hidden pre-activations, activations,
	// and deltas in its own matrix row (disjoint writes), phase two reduces
	// them into the gradients serially in the inline loop's exact
	// sample/layer/unit order — bit-identical to the inline path at every
	// worker count.
	useParallel := r >= mlpParallelMinRows && parallel.MaxWorkers() > 1
	var preM, actsM, deltasM []*mat.Dense
	if useParallel {
		preM = make([]*mat.Dense, nLayers)
		actsM = make([]*mat.Dense, nLayers)
		deltasM = make([]*mat.Dense, nLayers+1)
		for l := 1; l < nLayers; l++ {
			preM[l] = ws.GetMatrix(r, sizes[l])
			actsM[l] = ws.GetMatrix(r, sizes[l])
		}
		for l := 1; l <= nLayers; l++ {
			deltasM[l] = ws.GetMatrix(r, sizes[l])
		}
		defer func() {
			for l := nLayers; l >= 1; l-- {
				ws.PutMatrix(deltasM[l])
			}
			for l := nLayers - 1; l >= 1; l-- {
				ws.PutMatrix(actsM[l])
				ws.PutMatrix(preM[l])
			}
		}()
	}

	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		// Zero gradients.
		for l := 0; l < nLayers; l++ {
			d := gw[l].Data()
			for i := range d {
				d[i] = 0
			}
			for i := range gb[l] {
				gb[l][i] = 0
			}
		}
		if useParallel {
			parallel.ForEachBlock(r, mlpBlockRows, func(lo, hi int) error {
				m.batchPass(xs, ys, preM, actsM, deltasM, lo, hi, nLayers, r)
				return nil
			})
			for i := 0; i < r; i++ {
				for l := nLayers - 1; l >= 0; l-- {
					aPrev := xs.RawRow(i)
					if l > 0 {
						aPrev = actsM[l].RawRow(i)
					}
					dl := deltasM[l+1].RawRow(i)
					g := gw[l]
					for o := range dl {
						row := g.RawRow(o)
						d := dl[o]
						for j := range aPrev {
							row[j] += d * aPrev[j]
						}
						gb[l][o] += d
					}
				}
			}
			step++
			adamStep(m, mw, vw, mb, vb, gw, gb, lr, step, nLayers)
			continue
		}
		// Forward + backward, full batch.
		for i := 0; i < r; i++ {
			acts[0] = xs.RawRow(i)
			a := acts[0]
			for l := 0; l < nLayers; l++ {
				z := pre[l]
				for k := range z {
					row := m.weights[l].RawRow(k)
					s := m.biases[l][k]
					for j, av := range a {
						s += row[j] * av
					}
					z[k] = s
				}
				out := acts[l+1]
				if l < nLayers-1 {
					for k, v := range z {
						if v > 0 {
							out[k] = v
						} else {
							out[k] = 0
						}
					}
				} else {
					copy(out, z) // linear output
				}
				a = out
			}
			diff := acts[nLayers][0] - ys[i]
			// Backward.
			delta := deltas[nLayers][:1]
			delta[0] = 2 * diff / float64(r)
			for l := nLayers - 1; l >= 0; l-- {
				aPrev := acts[l]
				g := gw[l]
				for o := range delta {
					row := g.RawRow(o)
					d := delta[o]
					for j := range aPrev {
						row[j] += d * aPrev[j]
					}
					gb[l][o] += d
				}
				if l == 0 {
					break
				}
				// Propagate through Wᵀ and the ReLU mask.
				prevDelta := deltas[l]
				for j := range prevDelta {
					prevDelta[j] = 0
				}
				for o := range delta {
					row := m.weights[l].RawRow(o)
					d := delta[o]
					for j := range prevDelta {
						prevDelta[j] += d * row[j]
					}
				}
				for j := range prevDelta {
					if pre[l-1][j] <= 0 {
						prevDelta[j] = 0
					}
				}
				delta = prevDelta
			}
		}
		// Adam update.
		step++
		adamStep(m, mw, vw, mb, vb, gw, gb, lr, step, nLayers)
	}
	m.fitted = true
	return nil
}

const adamBeta1, adamBeta2, adamEps = 0.9, 0.999, 1e-8

// adamStep applies one full-batch Adam update to the weights and biases.
func adamStep(m *MLP, mw, vw []*mat.Dense, mb, vb [][]float64, gw []*mat.Dense, gb [][]float64, lr float64, step, nLayers int) {
	bc1 := 1 - math.Pow(adamBeta1, float64(step))
	bc2 := 1 - math.Pow(adamBeta2, float64(step))
	for l := 0; l < nLayers; l++ {
		wd, gd := m.weights[l].Data(), gw[l].Data()
		md, vd := mw[l].Data(), vw[l].Data()
		for k := range wd {
			md[k] = adamBeta1*md[k] + (1-adamBeta1)*gd[k]
			vd[k] = adamBeta2*vd[k] + (1-adamBeta2)*gd[k]*gd[k]
			wd[k] -= lr * (md[k] / bc1) / (math.Sqrt(vd[k]/bc2) + adamEps)
		}
		for k := range m.biases[l] {
			mb[l][k] = adamBeta1*mb[l][k] + (1-adamBeta1)*gb[l][k]
			vb[l][k] = adamBeta2*vb[l][k] + (1-adamBeta2)*gb[l][k]*gb[l][k]
			m.biases[l][k] -= lr * (mb[l][k] / bc1) / (math.Sqrt(vb[l][k]/bc2) + adamEps)
		}
	}
}

// batchPass runs the forward and backward passes of samples [lo, hi)
// into their private rows of preM/actsM/deltasM. Rows are disjoint, so
// blocks may run concurrently in any order; each sample's row values match
// the inline path's shared-buffer results exactly (including the pre ≤ 0
// ReLU mask test, kept on stored pre-activations so even non-finite
// values mask identically).
func (m *MLP) batchPass(xs *mat.Dense, ys []float64, preM, actsM, deltasM []*mat.Dense, lo, hi, nLayers, r int) {
	for i := lo; i < hi; i++ {
		a := xs.RawRow(i)
		for l := 0; l < nLayers-1; l++ {
			z := preM[l+1].RawRow(i)
			out := actsM[l+1].RawRow(i)
			for k := range z {
				row := m.weights[l].RawRow(k)
				s := m.biases[l][k]
				for j, av := range a {
					s += row[j] * av
				}
				z[k] = s
				if s > 0 {
					out[k] = s
				} else {
					out[k] = 0
				}
			}
			a = out
		}
		// Linear output layer (width 1) and the loss gradient.
		row := m.weights[nLayers-1].RawRow(0)
		s := m.biases[nLayers-1][0]
		for j, av := range a {
			s += row[j] * av
		}
		delta := deltasM[nLayers].RawRow(i)
		delta[0] = 2 * (s - ys[i]) / float64(r)
		for l := nLayers - 1; l >= 1; l-- {
			prevDelta := deltasM[l].RawRow(i)
			for j := range prevDelta {
				prevDelta[j] = 0
			}
			for o := range delta {
				wrow := m.weights[l].RawRow(o)
				d := delta[o]
				for j := range prevDelta {
					prevDelta[j] += d * wrow[j]
				}
			}
			z := preM[l].RawRow(i)
			for j := range prevDelta {
				if z[j] <= 0 {
					prevDelta[j] = 0
				}
			}
			delta = prevDelta
		}
	}
}

func meanStd(v []float64) (mean, std float64) {
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(v)))
	if std < 1e-12 {
		std = 1
	}
	return mean, std
}

// Predict runs a forward pass for x.
func (m *MLP) Predict(x []float64) float64 {
	if !m.fitted {
		panic(errors.New("nnet: model is not fitted"))
	}
	a := append([]float64(nil), x...)
	if m.std != nil {
		a = m.std.TransformRow(x)
	}
	n := len(m.weights)
	for l := 0; l < n; l++ {
		z := m.weights[l].MulVec(a)
		for k := range z {
			z[k] += m.biases[l][k]
		}
		if l < n-1 {
			for k := range z {
				if z[k] < 0 {
					z[k] = 0
				}
			}
		}
		a = z
	}
	return a[0]*m.yScale + m.yMean
}
