package nnet

import (
	"math"
	"math/rand/v2"
	"testing"

	"wpred/internal/mat"
)

func TestMLPStandardizedFitsLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	n := 80
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * 10
		x.Set(i, 0, v)
		y[i] = 3*v + 5
	}
	m := &MLP{Standardize: true, Epochs: 600, Hidden: []int{16, 16}, Seed: 3}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sse := 0.0
	for i := 0; i < n; i++ {
		d := m.Predict(x.RawRow(i)) - y[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / float64(n)); rmse > 2 {
		t.Fatalf("standardized MLP RMSE = %v, want < 2", rmse)
	}
}

func TestMLPRawScaleStaysFinite(t *testing.T) {
	// The default (Scikit-Learn-faithful) configuration trains on raw
	// scales. Even on throughput-magnitude data the forward/backward pass
	// must stay numerically sane — the degradation the paper reports is a
	// quality issue, not a NaN blow-up.
	rng := rand.New(rand.NewPCG(5, 6))
	n := 30
	x := mat.New(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 300 + rng.Float64()*80
		x.Set(i, 0, v)
		y[i] = 1.4*v + 5*rng.NormFloat64()
	}
	raw := &MLP{Seed: 7}
	if err := raw.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p := raw.Predict(x.RawRow(i))
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("raw-scale prediction %d = %v", i, p)
		}
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	n := 40
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = x.At(i, 0) - x.At(i, 1)
	}
	a := &MLP{Standardize: true, Seed: 11, Epochs: 50}
	b := &MLP{Standardize: true, Seed: 11, Epochs: 50}
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.2}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed must reproduce the network")
	}
}

func TestMLPDefaultsSixLayers(t *testing.T) {
	m := &MLP{}
	hidden, epochs, lr := m.params()
	if len(hidden) != 6 {
		t.Fatalf("default hidden layers = %d, want 6 (the paper's configuration)", len(hidden))
	}
	if epochs <= 0 || lr <= 0 {
		t.Fatal("defaults must be positive")
	}
}

func TestMLPErrors(t *testing.T) {
	m := &MLP{}
	if err := m.Fit(mat.New(0, 1), nil); err == nil {
		t.Fatal("empty training set must error")
	}
	if err := m.Fit(mat.New(2, 1), []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unfitted Predict must panic")
		}
	}()
	(&MLP{}).Predict([]float64{1})
}
