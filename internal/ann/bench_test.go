package ann

import (
	"math/rand/v2"
	"sync"
	"testing"

	"wpred/internal/distance"
	"wpred/internal/fingerprint"
	"wpred/internal/mat"
)

// benchFP draws one fingerprint near one of 64 cluster centers — the
// shape real reference libraries take (many SKUs × workload families,
// each a tight cluster), and the regime a vantage-point tree is built
// for. Uniform noise would instead flatten the distance distribution and
// defeat any metric index.
func benchFP(rows, cols int, seed uint64) *fingerprint.Fingerprint {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcde))
	m := mat.New(rows, cols)
	for j := 0; j < cols; j++ {
		center := float64(rng.IntN(64)) * 0.25
		for i := 0; i < rows; i++ {
			m.Set(i, j, center+0.02*rng.Float64())
		}
	}
	return &fingerprint.Fingerprint{Rep: fingerprint.HistFP, Features: testFeatures(cols), M: m}
}

const benchLibrarySize = 10000

var benchOnce sync.Once
var benchItems []Item
var benchIndex *Index
var benchQueries []*fingerprint.Fingerprint

func benchSetup(b *testing.B) {
	benchOnce.Do(func() {
		benchItems = make([]Item, benchLibrarySize)
		for i := range benchItems {
			benchItems[i] = Item{Label: "ref", FP: benchFP(20, 4, uint64(i)+1)}
		}
		ix, err := Build(benchItems, distance.L21{}, Config{Seed: 17})
		if err != nil {
			panic(err)
		}
		benchIndex = ix
		benchQueries = make([]*fingerprint.Fingerprint, 64)
		for i := range benchQueries {
			benchQueries[i] = benchFP(20, 4, uint64(100000+i))
		}
	})
	if benchIndex == nil {
		b.Fatal("bench setup failed")
	}
}

// BenchmarkNearestExact is the baseline the index competes with: an
// exhaustive nearest-neighbor scan over the 10k-item library.
func BenchmarkNearestExact(b *testing.B) {
	benchSetup(b)
	m := distance.L21{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := benchQueries[i%len(benchQueries)]
		best, bestIdx := 0.0, -1
		for j, it := range benchItems {
			d, err := m.Distance(q.M, it.FP.M)
			if err != nil {
				b.Fatal(err)
			}
			if bestIdx == -1 || d < best {
				best, bestIdx = d, j
			}
		}
		if bestIdx < 0 {
			b.Fatal("no result")
		}
	}
}

// BenchmarkNearestIndexed is the same lookup through the VP-tree (exact
// mode — identical answers to the scan, enforced by the recall check in
// the annrecall experiment and TestKNNExactModeMatchesBruteForce).
func BenchmarkNearestIndexed(b *testing.B) {
	benchSetup(b)
	buf := &QueryBuffer{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := benchQueries[i%len(benchQueries)]
		res, _, err := benchIndex.KNN(q, 1, buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 1 {
			b.Fatal("no result")
		}
	}
}
