// Package ann provides a stdlib-only vantage-point tree over workload
// fingerprints, turning the O(N) exhaustive nearest-reference sweep into a
// sublinear lookup (the ROADMAP "Sublinear similarity at million-workload
// scale" item).
//
// The index has Fit-once/Query-many semantics: Build constructs the tree
// deterministically — vantage points are drawn from a seeded splitmix64
// stream, splits are median-radius with (distance, index) tie-breaks — and
// the resulting Index is immutable and safe for concurrent queries (each
// query owns its QueryBuffer).
//
// Two search modes, chosen by the distance:
//
//   - Exact mode, for true metric-space distances (L1,1, L2,1, Fro, Canb):
//     subtrees are pruned with the triangle inequality only when no item
//     inside can possibly beat the current k-th best, so k-NN and ε-range
//     results are identical to an exhaustive scan, ties and all.
//
//   - Approximate mode, for distances that violate the triangle inequality
//     (DTW, LCSS, Chi2, Corr): the same pruning rule is applied with an
//     additive slack τ (Config.Tau) — a subtree survives unless its
//     triangle-derived bound exceeds the k-th best by more than τ. Larger τ
//     prunes less and recalls more; τ = +Inf degenerates to the exhaustive
//     scan. For DTW, queries additionally run the distance cascade: the
//     per-item band envelope (built once at Build time) yields a cheap
//     lower bound that skips the dynamic program outright, and survivors
//     run the early-abandoning DP, which is bit-identical to the exact
//     distance whenever the pair survives. The cascade is loss-free — it
//     only ever skips pairs that provably cannot improve the result — so
//     it affects speed, never recall.
package ann

import (
	"fmt"
	"math"
	"sort"

	"wpred/internal/distance"
	"wpred/internal/fingerprint"
	"wpred/internal/mat"
	"wpred/internal/obs"
)

// Index traffic counters (see "Sublinear similarity" in DESIGN.md): nodes
// touched by tree traversal, library items skipped without an exact
// distance evaluation (by subtree pruning, envelope lower bounds, or DP
// early abandonment), and the exact refinements that remained.
var (
	annNodesVisited = obs.GetCounter("wpred_ann_nodes_visited_total",
		"VP-tree nodes visited across all index queries.", nil)
	annExact = obs.GetCounter("wpred_ann_exact_refinements_total",
		"Exact distance evaluations performed by index queries.", nil)
	annPrunedTree = obs.GetCounter("wpred_ann_pairs_pruned_total",
		"Library items skipped without an exact distance evaluation, by mechanism.",
		obs.Labels{"reason": "tree"})
	annPrunedLB = obs.GetCounter("wpred_ann_pairs_pruned_total",
		"Library items skipped without an exact distance evaluation, by mechanism.",
		obs.Labels{"reason": "lower_bound"})
	annPrunedEA = obs.GetCounter("wpred_ann_pairs_pruned_total",
		"Library items skipped without an exact distance evaluation, by mechanism.",
		obs.Labels{"reason": "early_abandon"})
)

// Item is one indexed fingerprint with its caller-meaningful label
// (simeval uses the reference experiment's workload name).
type Item struct {
	Label string
	FP    *fingerprint.Fingerprint
}

// Config tunes index construction.
type Config struct {
	// Seed drives the deterministic vantage-point selection (splitmix64
	// stream; 0 is a valid seed).
	Seed uint64
	// Tau is the approximate-mode pruning slack: a subtree is pruned only
	// when its triangle-derived bound exceeds the current k-th best
	// distance by more than Tau. Ignored in exact mode; negative or NaN is
	// an error; +Inf disables pruning entirely.
	Tau float64
}

// Result is one retrieved neighbor.
type Result struct {
	// Index is the item's position in the indexed slice.
	Index int
	// Label is the item's label.
	Label string
	// Distance is the exact distance to the query.
	Distance float64
}

// QueryStats accounts for one query's work. Exact + Pruned() always equals
// Total: every library item is either refined exactly or skipped by one of
// the three pruning mechanisms.
type QueryStats struct {
	// Total is the library size.
	Total int
	// NodesVisited counts tree nodes touched by the traversal.
	NodesVisited int
	// Exact counts full distance evaluations.
	Exact int
	// PrunedTree counts items skipped because their whole subtree was
	// outside the triangle-inequality bound.
	PrunedTree int
	// PrunedLB counts items rejected by the envelope lower bound before
	// the dynamic program ran (DTW cascade only).
	PrunedLB int
	// Abandoned counts items whose dynamic program early-abandoned against
	// the traversal cutoff (DTW cascade only).
	Abandoned int
}

// Pruned is the number of library items skipped without an exact distance
// evaluation.
func (s QueryStats) Pruned() int { return s.PrunedTree + s.PrunedLB + s.Abandoned }

// node is one VP-tree node in the flat arena.
type node struct {
	item            int32
	inside, outside int32 // arena indexes; -1 = none
	size            int32 // items in this subtree, vantage included
	radius          float64
}

// Index is an immutable VP-tree over a fingerprint library. Build once,
// query from any number of goroutines (one QueryBuffer per goroutine).
type Index struct {
	metric distance.Metric
	seed   uint64
	tau    float64
	exact  bool

	items []Item
	nodes []node
	root  int32

	// DTW cascade state: the metric as a DTW value plus one band envelope
	// per item, both zero/nil for other distances.
	dtw   distance.DTW
	isDTW bool
	envs  []*distance.Envelope
}

// metricSpace reports whether the named distance satisfies the triangle
// inequality, enabling exact-mode pruning. Of the study's norms, L1,1,
// L2,1, Frobenius, and Canberra are true metrics; chi-square,
// 1−correlation, DTW, and LCSS all violate it.
func metricSpace(name string) bool {
	switch name {
	case "L1,1", "L2,1", "Fro", "Canb":
		return true
	}
	return false
}

// splitmix64 is the repository's standard seed-expansion finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Build constructs the index over the items. The item order defines the
// deterministic tie-breaks, so the same (items, metric, config) always
// yields the same tree and the same query results.
func Build(items []Item, m distance.Metric, cfg Config) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("ann: nil metric")
	}
	if cfg.Tau < 0 || math.IsNaN(cfg.Tau) {
		return nil, fmt.Errorf("ann: invalid tau %v", cfg.Tau)
	}
	for i, it := range items {
		if it.FP == nil || it.FP.M == nil {
			return nil, fmt.Errorf("ann: item %d (%s) has no fingerprint", i, it.Label)
		}
	}
	ix := &Index{
		metric: m,
		seed:   cfg.Seed,
		tau:    cfg.Tau,
		exact:  metricSpace(m.Name()),
		items:  items,
		root:   -1,
	}
	if d, ok := m.(distance.DTW); ok {
		ix.dtw = d
		ix.isDTW = true
		ix.envs = make([]*distance.Envelope, len(items))
		for i, it := range items {
			env, err := d.NewEnvelope(it.FP.M)
			if err != nil {
				return nil, fmt.Errorf("ann: envelope for item %d (%s): %w", i, it.Label, err)
			}
			ix.envs[i] = env
		}
	}
	if len(items) == 0 {
		return ix, nil
	}
	perm := make([]int32, len(items))
	for i := range perm {
		perm[i] = int32(i)
	}
	ix.nodes = make([]node, 0, len(items))
	b := &builder{ix: ix, state: splitmix64(cfg.Seed)}
	root, err := b.build(perm)
	if err != nil {
		return nil, err
	}
	ix.root = root
	return ix, nil
}

// builder carries construction state: the vantage-selection stream and the
// per-build distance scratch.
type builder struct {
	ix    *Index
	state uint64
	ws    mat.Workspace
	dists []float64
}

func (b *builder) build(perm []int32) (int32, error) {
	if len(perm) == 0 {
		return -1, nil
	}
	// Deterministic seeded vantage selection: one splitmix64 draw per
	// node, consumed in depth-first construction order.
	b.state = splitmix64(b.state)
	vp := int(b.state % uint64(len(perm)))
	perm[0], perm[vp] = perm[vp], perm[0]
	vantage := perm[0]
	rest := perm[1:]

	n := int32(len(b.ix.nodes))
	b.ix.nodes = append(b.ix.nodes, node{item: vantage, inside: -1, outside: -1, size: int32(len(perm))})
	if len(rest) == 0 {
		return n, nil
	}

	if cap(b.dists) < len(rest) {
		b.dists = make([]float64, len(rest))
	}
	dists := b.dists[:len(rest)]
	a := b.ix.items[vantage].FP.M
	for i, it := range rest {
		v, err := b.distance(a, int(it))
		if err != nil {
			return -1, fmt.Errorf("ann: build distance %s(%d,%d): %w", b.ix.metric.Name(), vantage, it, err)
		}
		dists[i] = v
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if dists[order[x]] != dists[order[y]] {
			return dists[order[x]] < dists[order[y]]
		}
		return rest[order[x]] < rest[order[y]]
	})
	sorted := make([]int32, len(rest))
	for i, o := range order {
		sorted[i] = rest[o]
	}
	mid := len(sorted) / 2
	radius := dists[order[mid]]
	// b.dists is reused by the recursive calls; everything needed from it
	// is captured in radius and the sorted split.
	inside, err := b.build(sorted[:mid])
	if err != nil {
		return -1, err
	}
	outside, err := b.build(sorted[mid:])
	if err != nil {
		return -1, err
	}
	b.ix.nodes[n].radius = radius
	b.ix.nodes[n].inside = inside
	b.ix.nodes[n].outside = outside
	return n, nil
}

// distance evaluates the exact distance from matrix a to item j, reusing
// the builder's workspace on the DTW path.
func (b *builder) distance(a *mat.Dense, j int) (float64, error) {
	if b.ix.isDTW {
		return b.ix.dtw.DistanceWS(a, b.ix.items[j].FP.M, &b.ws)
	}
	return b.ix.metric.Distance(a, b.ix.items[j].FP.M)
}

// Len reports the number of indexed items.
func (ix *Index) Len() int { return len(ix.items) }

// Exact reports whether the index runs in exact mode (metric-space
// distance, results identical to an exhaustive scan).
func (ix *Index) Exact() bool { return ix.exact }

// Metric returns the indexed distance.
func (ix *Index) Metric() distance.Metric { return ix.metric }

// Items returns the indexed items (shared slice; do not mutate).
func (ix *Index) Items() []Item { return ix.items }

// Tau returns the approximate-mode pruning slack.
func (ix *Index) Tau() float64 { return ix.tau }

// slack is the traversal slack: 0 in exact mode, τ otherwise.
func (ix *Index) slack() float64 {
	if ix.exact {
		return 0
	}
	return ix.tau
}

// QueryBuffer holds one query's reusable scratch: the DTW workspace and
// the result-heap backing. One buffer per goroutine; the zero value is
// ready to use.
type QueryBuffer struct {
	ws  mat.Workspace
	res []Result
}

// searcher is the per-query traversal state, shared by KNN and Range.
type searcher struct {
	ix     *Index
	q      *mat.Dense
	k      int // 0 in range mode
	eps    float64
	ranged bool
	buf    *QueryBuffer
	heap   []Result // k-NN: max-heap under worse(); range: plain append
	stats  QueryStats
}

// worse orders results descending by (distance, index): x is worse than y
// when it is farther, or equally far with a larger index. The k-NN heap
// keeps the k best under the inverse of this order, matching an
// exhaustive scan's ascending (distance, index) sort, ties included.
func worse(x, y Result) bool {
	if x.Distance != y.Distance {
		return x.Distance > y.Distance
	}
	return x.Index > y.Index
}

// bound is the distance a new result must not exceed: the current k-th
// best (+Inf while the heap is short), or ε in range mode.
func (s *searcher) bound() float64 {
	if s.ranged {
		return s.eps
	}
	if len(s.heap) < s.k {
		return math.Inf(1)
	}
	return s.heap[0].Distance
}

// offer records an exactly-evaluated candidate.
func (s *searcher) offer(r Result) {
	if s.ranged {
		if r.Distance <= s.eps {
			s.heap = append(s.heap, r)
		}
		return
	}
	if len(s.heap) < s.k {
		s.heap = append(s.heap, r)
		s.up(len(s.heap) - 1)
		return
	}
	if worse(s.heap[0], r) {
		s.heap[0] = r
		s.down(0)
	}
}

func (s *searcher) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(s.heap[i], s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *searcher) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(s.heap) && worse(s.heap[l], s.heap[w]) {
			w = l
		}
		if r < len(s.heap) && worse(s.heap[r], s.heap[w]) {
			w = r
		}
		if w == i {
			return
		}
		s.heap[i], s.heap[w] = s.heap[w], s.heap[i]
		i = w
	}
}

// KNN returns the k nearest indexed items to the query fingerprint,
// ascending by (distance, index). In exact mode the result equals an
// exhaustive scan's; in approximate mode recall depends on τ (measured by
// the annrecall experiment). buf may be nil; passing one reuses its
// scratch across queries. Safe for concurrent use with distinct buffers.
func (ix *Index) KNN(q *fingerprint.Fingerprint, k int, buf *QueryBuffer) ([]Result, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	return ix.search(q, k, 0, false, buf)
}

// Range returns every indexed item within eps of the query, ascending by
// (distance, index). Exact in exact mode; in approximate mode items whose
// subtree bound exceeded eps+τ may be missed.
func (ix *Index) Range(q *fingerprint.Fingerprint, eps float64, buf *QueryBuffer) ([]Result, QueryStats, error) {
	if eps < 0 || math.IsNaN(eps) {
		return nil, QueryStats{}, fmt.Errorf("ann: invalid range radius %v", eps)
	}
	return ix.search(q, 0, eps, true, buf)
}

func (ix *Index) search(q *fingerprint.Fingerprint, k int, eps float64, ranged bool, buf *QueryBuffer) ([]Result, QueryStats, error) {
	if q == nil || q.M == nil {
		return nil, QueryStats{}, fmt.Errorf("ann: nil query fingerprint")
	}
	if buf == nil {
		buf = &QueryBuffer{}
	}
	s := &searcher{ix: ix, q: q.M, k: k, eps: eps, ranged: ranged, buf: buf, heap: buf.res[:0]}
	s.stats.Total = len(ix.items)
	if ix.root >= 0 {
		if err := s.visit(ix.root); err != nil {
			return nil, QueryStats{}, err
		}
	}
	buf.res = s.heap[:0]
	out := append([]Result(nil), s.heap...)
	sort.Slice(out, func(a, b int) bool { return worse(out[b], out[a]) })
	annNodesVisited.Add(uint64(s.stats.NodesVisited))
	annExact.Add(uint64(s.stats.Exact))
	annPrunedTree.Add(uint64(s.stats.PrunedTree))
	annPrunedLB.Add(uint64(s.stats.PrunedLB))
	annPrunedEA.Add(uint64(s.stats.Abandoned))
	return out, s.stats, nil
}

// visit processes one node: evaluate the vantage point through the
// cascade, then descend into the children that can still contain a
// result, nearer side first.
func (s *searcher) visit(ni int32) error {
	nd := &s.ix.nodes[ni]
	s.stats.NodesVisited++
	slack := s.ix.slack()
	bound := s.bound()

	// Cutoff for the vantage-point evaluation: a distance beyond it can
	// neither enter the result set (cutoff >= bound) nor force an
	// inside-side descent (cutoff >= radius + bound + slack), so
	// abandoning against it loses nothing.
	cutoff := bound
	if nd.inside >= 0 {
		if c := nd.radius + bound + slack; c > cutoff {
			cutoff = c
		}
	}

	d, known, err := s.refine(nd, cutoff)
	if err != nil {
		return err
	}
	if known {
		s.offer(Result{Index: int(nd.item), Label: s.ix.items[nd.item].Label, Distance: d})
	}

	if nd.inside < 0 && nd.outside < 0 {
		return nil
	}
	if !known {
		// d > cutoff >= radius + bound + slack: no item inside the ball
		// can beat the bound (d(q,x) >= d - radius > bound + slack), while
		// the outside half must still be visited.
		if nd.inside >= 0 {
			s.stats.PrunedTree += int(s.ix.nodes[nd.inside].size)
		}
		if nd.outside >= 0 {
			return s.visit(nd.outside)
		}
		return nil
	}

	// Nearer side first; the refreshed bound after it often prunes the
	// other. Equality against the limit always descends, preserving
	// exhaustive-scan tie-breaking in exact mode.
	if d < nd.radius {
		if err := s.descendInside(nd, d); err != nil {
			return err
		}
		return s.descendOutside(nd, d)
	}
	if err := s.descendOutside(nd, d); err != nil {
		return err
	}
	return s.descendInside(nd, d)
}

// descendInside visits the inside child unless every item within the
// vantage ball is provably beyond the bound: d(q,x) >= d - radius.
func (s *searcher) descendInside(nd *node, d float64) error {
	if nd.inside < 0 {
		return nil
	}
	if d-nd.radius > s.bound()+s.ix.slack() {
		s.stats.PrunedTree += int(s.ix.nodes[nd.inside].size)
		return nil
	}
	return s.visit(nd.inside)
}

// descendOutside visits the outside child unless every item beyond the
// vantage ball is provably beyond the bound: d(q,x) >= radius - d.
func (s *searcher) descendOutside(nd *node, d float64) error {
	if nd.outside < 0 {
		return nil
	}
	if nd.radius-d > s.bound()+s.ix.slack() {
		s.stats.PrunedTree += int(s.ix.nodes[nd.outside].size)
		return nil
	}
	return s.visit(nd.outside)
}

// refine evaluates the exact distance from the query to the node's
// vantage point through the distance cascade, abandoning once the value
// provably exceeds cutoff. known=false means d > cutoff.
func (s *searcher) refine(nd *node, cutoff float64) (float64, bool, error) {
	if s.ix.isDTW {
		if !math.IsInf(cutoff, 1) {
			lb, err := s.ix.dtw.LowerBound(s.q, s.ix.envs[nd.item])
			if err != nil {
				return 0, false, err
			}
			if lb > cutoff {
				s.stats.PrunedLB++
				return 0, false, nil
			}
		}
		d, ok, err := s.ix.dtw.DistanceEarlyAbandon(s.q, s.ix.items[nd.item].FP.M, cutoff, &s.buf.ws)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			s.stats.Abandoned++
			return 0, false, nil
		}
		s.stats.Exact++
		return d, true, nil
	}
	d, err := s.ix.metric.Distance(s.q, s.ix.items[nd.item].FP.M)
	if err != nil {
		return 0, false, err
	}
	s.stats.Exact++
	return d, true, nil
}
