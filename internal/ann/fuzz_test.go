package ann

import (
	"math"
	"sort"
	"testing"

	"wpred/internal/distance"
	"wpred/internal/fingerprint"
	"wpred/internal/mat"
)

// FuzzVPTreeQuery derives a library, a query, and a configuration from the
// fuzz input and checks the index invariants that must hold on every
// input: no panics, exact-mode k-NN identical to the exhaustive scan,
// DTW with τ=+Inf identical too, finite-τ results sorted with genuinely
// exact distances, and work accounting that reconciles (exact + pruned ==
// total). The seed corpus in testdata/fuzz covers both modes, tied
// distances, and single-item trees.
func FuzzVPTreeQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(7), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint64(0), uint8(1))
	f.Add([]byte{255, 128, 9, 33, 14, 2}, uint64(99), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, kByte uint8) {
		if len(data) == 0 {
			return
		}
		// Derive everything deterministically from one splitmix64 stream
		// salted by the data bytes, so crashes replay exactly.
		state := splitmix64(seed)
		for _, b := range data {
			state = splitmix64(state ^ uint64(b))
		}
		next := func() uint64 { state = splitmix64(state); return state }
		val := func() float64 { return float64(next()%1000) / 250 }

		n := 1 + int(next()%40)
		rows := 1 + int(next()%10)
		cols := 1 + int(next()%4)
		useDTW := next()%2 == 0
		tau := 0.0
		var m distance.Metric
		if useDTW {
			m = distance.DTW{Dependent: next()%2 == 0, Window: int(next() % 6)}
			if next()%2 == 0 {
				tau = val()
			} else {
				tau = math.Inf(1)
			}
		} else {
			m = exactMetrics[next()%uint64(len(exactMetrics))]
		}

		mk := func(r int) *fingerprint.Fingerprint {
			d := mat.New(r, cols)
			for i := 0; i < r; i++ {
				for j := 0; j < cols; j++ {
					d.Set(i, j, val())
				}
			}
			return &fingerprint.Fingerprint{Rep: fingerprint.HistFP, Features: testFeatures(cols), M: d}
		}
		items := make([]Item, n)
		for i := range items {
			r := rows
			if useDTW {
				r = 1 + int(next()%10) // DTW tolerates ragged lengths
			}
			items[i] = Item{Label: "f", FP: mk(r)}
		}
		ix, err := Build(items, m, Config{Seed: next(), Tau: tau})
		if err != nil {
			// Degenerate fuzz inputs may be rejected by the distance
			// (e.g. all-zero Canberra denominators); that is the typed
			// error path, not a failure.
			return
		}
		q := mk(rows)
		k := 1 + int(kByte)%(n+2)
		got, stats, err := ix.KNN(q, k, nil)
		if err != nil {
			return
		}
		if stats.Exact+stats.Pruned() != stats.Total || stats.Total != n {
			t.Fatalf("stats do not reconcile: %+v", stats)
		}
		for i, r := range got {
			d, err := m.Distance(q.M, items[r.Index].FP.M)
			if err != nil || d != r.Distance {
				t.Fatalf("result %d distance %v != recomputed %v (err %v)", i, r.Distance, d, err)
			}
			if i > 0 && worse(got[i-1], got[i]) {
				t.Fatalf("results not sorted: %v", got)
			}
		}
		if !useDTW || math.IsInf(tau, 1) {
			want := make([]Result, 0, n)
			for i, it := range items {
				d, err := m.Distance(q.M, it.FP.M)
				if err != nil {
					return
				}
				want = append(want, Result{Index: i, Label: it.Label, Distance: d})
			}
			sort.Slice(want, func(a, b int) bool { return worse(want[b], want[a]) })
			if k > len(want) {
				k = len(want)
			}
			if !sameResults(got, want[:k]) {
				t.Fatalf("indexed %v != exact %v (metric %s, tau %v)", got, want[:k], m.Name(), tau)
			}
		}
	})
}
