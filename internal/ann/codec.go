package ann

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"wpred/internal/distance"
	"wpred/internal/fingerprint"
	"wpred/internal/mat"
	"wpred/internal/telemetry"
)

// The on-disk format follows the internal/snapshot conventions — a single
// header line
//
//	wpredann v1 <sha256-hex-of-payload>\n
//
// followed by the JSON payload — so index files carry the same integrity
// guarantees as pipeline snapshots: the decoder verifies magic, version,
// and checksum before touching the payload, and corrupt or truncated
// files always yield ErrCorrupt, never a panic or a silently wrong tree.
// The distance itself is not serialized (metrics carry behavior, not just
// state); Decode takes the metric from the caller and cross-checks its
// name against the encoded one. DTW envelopes are recomputed on decode —
// they are deterministic in the items, and rebuilding them is cheaper
// than shipping two extra matrices per item.

// CodecVersion is the current index format version. Decode rejects any
// other version with ErrVersion.
const CodecVersion = 1

// codecMagic is the file-format tag in the header line.
const codecMagic = "wpredann"

// ErrCorrupt marks an index file that failed structural validation: bad
// magic, checksum mismatch, malformed payload, or an inconsistent tree.
var ErrCorrupt = errors.New("ann: corrupt or truncated index")

// ErrVersion marks an index written by an incompatible format version.
var ErrVersion = errors.New("ann: unsupported index version")

// ErrMetricMismatch marks a decode attempted under a different distance
// than the index was built with.
var ErrMetricMismatch = errors.New("ann: index metric mismatch")

type itemJSON struct {
	Label    string    `json:"label"`
	Rep      int       `json:"rep"`
	Features []string  `json:"features"`
	Rows     int       `json:"rows"`
	Cols     int       `json:"cols"`
	Data     []float64 `json:"data"`
}

type nodeJSON struct {
	Item    int32   `json:"item"`
	Inside  int32   `json:"inside"`
	Outside int32   `json:"outside"`
	Size    int32   `json:"size"`
	Radius  float64 `json:"radius"`
}

type payloadJSON struct {
	Metric string     `json:"metric"`
	Seed   uint64     `json:"seed"`
	Tau    float64    `json:"tau"`
	Root   int32      `json:"root"`
	Items  []itemJSON `json:"items"`
	Nodes  []nodeJSON `json:"nodes"`
}

// Encode writes the index in the versioned, checksummed format. The
// output is deterministic for a deterministic build, so re-encoding an
// unchanged index is byte-identical.
func (ix *Index) Encode(w io.Writer) error {
	p := payloadJSON{
		Metric: ix.metric.Name(),
		Seed:   ix.seed,
		Tau:    ix.tau,
		Root:   ix.root,
		Items:  make([]itemJSON, len(ix.items)),
		Nodes:  make([]nodeJSON, len(ix.nodes)),
	}
	for i, it := range ix.items {
		p.Items[i] = itemJSON{
			Label:    it.Label,
			Rep:      int(it.FP.Rep),
			Features: telemetry.FeatureNames(it.FP.Features),
			Rows:     it.FP.M.Rows(),
			Cols:     it.FP.M.Cols(),
			Data:     it.FP.M.Data(),
		}
	}
	for i, nd := range ix.nodes {
		p.Nodes[i] = nodeJSON{Item: nd.item, Inside: nd.inside, Outside: nd.outside, Size: nd.size, Radius: nd.radius}
	}
	body, err := json.Marshal(&p)
	if err != nil {
		return fmt.Errorf("ann: encode: %w", err)
	}
	sum := sha256.Sum256(body)
	if _, err := fmt.Fprintf(w, "%s v%d %s\n", codecMagic, CodecVersion, hex.EncodeToString(sum[:])); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// Decode reads an index written by Encode and revalidates it end to end.
// The caller supplies the distance the index will query with; its name
// must match the encoded one (ErrMetricMismatch otherwise). Any
// structural damage — wrong magic, checksum mismatch, out-of-range tree
// references, a cyclic arena — yields ErrCorrupt.
func Decode(r io.Reader, m distance.Metric) (*Index, error) {
	if m == nil {
		return nil, fmt.Errorf("ann: nil metric")
	}
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	var gotMagic, sumHex string
	var version int
	if _, err := fmt.Sscanf(header, "%s v%d %s", &gotMagic, &version, &sumHex); err != nil || gotMagic != codecMagic {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorrupt, header)
	}
	if version != CodecVersion {
		return nil, fmt.Errorf("%w: v%d", ErrVersion, version)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	sum := sha256.Sum256(body)
	want, err := hex.DecodeString(sumHex)
	if err != nil || !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var p payloadJSON
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if p.Metric != m.Name() {
		return nil, fmt.Errorf("%w: index built with %s, decoding with %s", ErrMetricMismatch, p.Metric, m.Name())
	}
	if p.Tau < 0 || math.IsNaN(p.Tau) {
		return nil, fmt.Errorf("%w: invalid tau %v", ErrCorrupt, p.Tau)
	}

	items := make([]Item, len(p.Items))
	cols := -1
	for i, it := range p.Items {
		if it.Rows < 0 || it.Cols < 0 || len(it.Data) != it.Rows*it.Cols {
			return nil, fmt.Errorf("%w: item %d has %d values for a %dx%d matrix", ErrCorrupt, i, len(it.Data), it.Rows, it.Cols)
		}
		if cols == -1 {
			cols = it.Cols
		} else if it.Cols != cols {
			return nil, fmt.Errorf("%w: item %d has %d columns, want %d", ErrCorrupt, i, it.Cols, cols)
		}
		feats := make([]telemetry.Feature, len(it.Features))
		for j, name := range it.Features {
			f, ok := telemetry.FeatureByName(name)
			if !ok {
				return nil, fmt.Errorf("%w: unknown feature %q", ErrCorrupt, name)
			}
			feats[j] = f
		}
		items[i] = Item{Label: it.Label, FP: &fingerprint.Fingerprint{
			Rep:      fingerprint.Representation(it.Rep),
			Features: feats,
			M:        mat.NewFromData(it.Rows, it.Cols, it.Data),
		}}
	}

	nodes := make([]node, len(p.Nodes))
	if err := validateArena(p, len(items)); err != nil {
		return nil, err
	}
	for i, nd := range p.Nodes {
		nodes[i] = node{item: nd.Item, inside: nd.Inside, outside: nd.Outside, size: nd.Size, radius: nd.Radius}
	}

	ix := &Index{
		metric: m,
		seed:   p.Seed,
		tau:    p.Tau,
		exact:  metricSpace(m.Name()),
		items:  items,
		nodes:  nodes,
		root:   p.Root,
	}
	if d, ok := m.(distance.DTW); ok {
		ix.dtw = d
		ix.isDTW = true
		ix.envs = make([]*distance.Envelope, len(items))
		for i, it := range items {
			env, err := d.NewEnvelope(it.FP.M)
			if err != nil {
				return nil, fmt.Errorf("%w: envelope for item %d: %v", ErrCorrupt, i, err)
			}
			ix.envs[i] = env
		}
	}
	return ix, nil
}

// validateArena rejects trees a query could not traverse safely: child
// references must point forward in the arena (Build appends children
// after their parent, which also rules out cycles), every item index must
// be in range and used exactly once, and the root must cover the arena.
func validateArena(p payloadJSON, numItems int) error {
	if len(p.Nodes) != numItems {
		return fmt.Errorf("%w: %d nodes for %d items", ErrCorrupt, len(p.Nodes), numItems)
	}
	if numItems == 0 {
		if p.Root != -1 {
			return fmt.Errorf("%w: root %d in an empty index", ErrCorrupt, p.Root)
		}
		return nil
	}
	if p.Root < 0 || int(p.Root) >= len(p.Nodes) {
		return fmt.Errorf("%w: root %d out of range", ErrCorrupt, p.Root)
	}
	itemSeen := make([]bool, numItems)
	childSeen := make([]bool, len(p.Nodes))
	for i, nd := range p.Nodes {
		if nd.Item < 0 || int(nd.Item) >= numItems {
			return fmt.Errorf("%w: node %d item %d out of range", ErrCorrupt, i, nd.Item)
		}
		if itemSeen[nd.Item] {
			return fmt.Errorf("%w: item %d indexed twice", ErrCorrupt, nd.Item)
		}
		itemSeen[nd.Item] = true
		if nd.Size < 1 || int(nd.Size) > numItems {
			return fmt.Errorf("%w: node %d size %d out of range", ErrCorrupt, i, nd.Size)
		}
		if math.IsNaN(nd.Radius) || nd.Radius < 0 {
			return fmt.Errorf("%w: node %d radius %v", ErrCorrupt, i, nd.Radius)
		}
		for _, child := range []int32{nd.Inside, nd.Outside} {
			if child == -1 {
				continue
			}
			if child <= int32(i) || int(child) >= len(p.Nodes) {
				return fmt.Errorf("%w: node %d child %d not strictly forward", ErrCorrupt, i, child)
			}
			if childSeen[child] {
				return fmt.Errorf("%w: node %d referenced twice", ErrCorrupt, child)
			}
			childSeen[child] = true
		}
	}
	for i := range childSeen {
		if int32(i) != p.Root && !childSeen[i] {
			return fmt.Errorf("%w: node %d unreachable", ErrCorrupt, i)
		}
	}
	if childSeen[p.Root] {
		return fmt.Errorf("%w: root %d is also a child", ErrCorrupt, p.Root)
	}
	return nil
}
