package ann

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"wpred/internal/distance"
	"wpred/internal/fingerprint"
	"wpred/internal/mat"
	"wpred/internal/telemetry"
)

// testFeatures returns the first c resource features, the column set every
// test fingerprint shares.
func testFeatures(c int) []telemetry.Feature {
	fs := make([]telemetry.Feature, c)
	for i := range fs {
		fs[i] = telemetry.Feature(i)
	}
	return fs
}

// testFP builds a fingerprint over deterministic pseudo-random values.
// kind 0 = uniform, kind 1 = tied (3-point grid, exercises equal-distance
// tie-breaking), kind 2 = clustered around one of 4 centers.
func testFP(rows, cols int, seed uint64, kind int) *fingerprint.Fingerprint {
	rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
	m := mat.New(rows, cols)
	center := float64(rng.IntN(4))
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			switch kind {
			case 1:
				m.Set(i, j, float64(rng.IntN(3))*0.5)
			case 2:
				m.Set(i, j, center+0.05*rng.Float64())
			default:
				m.Set(i, j, rng.Float64())
			}
		}
	}
	return &fingerprint.Fingerprint{Rep: fingerprint.HistFP, Features: testFeatures(cols), M: m}
}

// testLibrary builds n fingerprints of identical shape.
func testLibrary(n, rows, cols int, kind int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Label: string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)), FP: testFP(rows, cols, uint64(i)+1, kind)}
	}
	return items
}

// bruteKNN is the exhaustive reference: all distances, ascending
// (distance, index) sort, first k.
func bruteKNN(t *testing.T, items []Item, m distance.Metric, q *fingerprint.Fingerprint, k int) []Result {
	t.Helper()
	all := make([]Result, 0, len(items))
	for i, it := range items {
		d, err := m.Distance(q.M, it.FP.M)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, Result{Index: i, Label: it.Label, Distance: d})
	}
	sort.Slice(all, func(a, b int) bool { return worse(all[b], all[a]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}

// exactMetrics are the metric-space distances the index answers exactly.
var exactMetrics = []distance.Metric{
	distance.L11{}, distance.L21{}, distance.Frobenius{}, distance.Canberra{},
}

// TestKNNExactModeMatchesBruteForce is the headline exactness property:
// for every metric-space distance, k-NN through the index equals the
// exhaustive scan — same items, same order, same distances — including on
// heavily tied libraries where tie-breaking decides the ranking.
func TestKNNExactModeMatchesBruteForce(t *testing.T) {
	for _, m := range exactMetrics {
		for kind := 0; kind < 3; kind++ {
			items := testLibrary(120, 10, 3, kind)
			ix, err := Build(items, m, Config{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !ix.Exact() {
				t.Fatalf("%s index should run in exact mode", m.Name())
			}
			buf := &QueryBuffer{}
			for qi := 0; qi < 12; qi++ {
				q := testFP(10, 3, uint64(1000+qi), kind)
				for _, k := range []int{1, 5, 120, 500} {
					got, stats, err := ix.KNN(q, k, buf)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteKNN(t, items, m, q, k)
					if !sameResults(got, want) {
						t.Fatalf("%s kind=%d q=%d k=%d: indexed %v != exact %v", m.Name(), kind, qi, k, got, want)
					}
					if stats.Exact+stats.Pruned() != stats.Total {
						t.Fatalf("stats do not reconcile: %+v", stats)
					}
				}
			}
			// Self-queries must find themselves at distance 0 first.
			for i := 0; i < 120; i += 17 {
				got, _, err := ix.KNN(items[i].FP, 1, buf)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 || got[0].Distance != 0 {
					t.Fatalf("%s: self-query %d missed itself: %v", m.Name(), i, got)
				}
			}
		}
	}
}

// TestKNNDTWInfiniteTauMatchesBruteForce pins that τ=+Inf restores
// exhaustive-scan equality even for the non-metric DTW: the cascade then
// only skips pairs that provably cannot make the top k, which is
// loss-free by construction.
func TestKNNDTWInfiniteTauMatchesBruteForce(t *testing.T) {
	for _, m := range []distance.DTW{{Dependent: true, Window: 8}, {Dependent: false, Window: 8}} {
		items := make([]Item, 50)
		for i := range items {
			items[i] = Item{Label: "w", FP: testFP(10+i%7, 3, uint64(i)+1, i%3)}
		}
		ix, err := Build(items, m, Config{Seed: 7, Tau: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		if ix.Exact() {
			t.Fatal("DTW index must not claim exact mode")
		}
		buf := &QueryBuffer{}
		for qi := 0; qi < 8; qi++ {
			q := testFP(12, 3, uint64(500+qi), qi%3)
			got, stats, err := ix.KNN(q, 5, buf)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(t, items, m, q, 5)
			if !sameResults(got, want) {
				t.Fatalf("%s q=%d: indexed %v != exact %v", m.Name(), qi, got, want)
			}
			if stats.Exact+stats.Pruned() != stats.Total {
				t.Fatalf("stats do not reconcile: %+v", stats)
			}
		}
	}
}

// TestKNNDTWFiniteTau checks the approximate contract: every returned
// distance is a genuine exact evaluation (recomputable bit-identically),
// results are sorted ascending by (distance, index), and the work
// accounting reconciles.
func TestKNNDTWFiniteTau(t *testing.T) {
	m := distance.DTW{Dependent: true, Window: 8}
	items := make([]Item, 80)
	for i := range items {
		items[i] = Item{Label: "w", FP: testFP(12, 3, uint64(i)+1, 2)}
	}
	ix, err := Build(items, m, Config{Seed: 3, Tau: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	buf := &QueryBuffer{}
	for qi := 0; qi < 10; qi++ {
		q := testFP(12, 3, uint64(900+qi), 2)
		got, stats, err := ix.KNN(q, 5, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("got %d results, want 5", len(got))
		}
		for i, r := range got {
			d, err := m.Distance(q.M, items[r.Index].FP.M)
			if err != nil {
				t.Fatal(err)
			}
			if d != r.Distance {
				t.Fatalf("result %d distance %v != recomputed %v", i, r.Distance, d)
			}
			if i > 0 && worse(got[i-1], got[i]) {
				t.Fatalf("results not sorted: %v", got)
			}
		}
		if stats.Exact+stats.Pruned() != stats.Total {
			t.Fatalf("stats do not reconcile: %+v", stats)
		}
	}
}

// TestRangeExactMode pins ε-range equality with the brute-force filter in
// exact mode, boundary (d == ε) included.
func TestRangeExactMode(t *testing.T) {
	m := distance.L21{}
	items := testLibrary(90, 8, 3, 1) // tied values make exact-boundary hits likely
	ix, err := Build(items, m, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	buf := &QueryBuffer{}
	for qi := 0; qi < 10; qi++ {
		q := testFP(8, 3, uint64(300+qi), 1)
		all := bruteKNN(t, items, m, q, len(items))
		for _, eps := range []float64{0, all[3].Distance, all[20].Distance, math.Inf(1)} {
			got, stats, err := ix.Range(q, eps, buf)
			if err != nil {
				t.Fatal(err)
			}
			var want []Result
			for _, r := range all {
				if r.Distance <= eps {
					want = append(want, r)
				}
			}
			if !sameResults(got, want) {
				t.Fatalf("range(%v): indexed %d results != exact %d", eps, len(got), len(want))
			}
			if stats.Exact+stats.Pruned() != stats.Total {
				t.Fatalf("stats do not reconcile: %+v", stats)
			}
		}
	}
}

// TestBuildDeterminism: same items, metric, and seed produce byte-identical
// encodings and identical query answers; a different seed may shape the
// tree differently but exact-mode answers stay equal.
func TestBuildDeterminism(t *testing.T) {
	items := testLibrary(64, 8, 3, 0)
	m := distance.L11{}
	ix1, err := Build(items, m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Build(items, m, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := ix1.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same build inputs produced different encodings")
	}
	ix3, err := Build(items, m, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := testFP(8, 3, 777, 0)
	r1, _, err := ix1.KNN(q, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	r3, _, err := ix3.KNN(q, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(r1, r3) {
		t.Fatal("exact-mode answers depend on the build seed")
	}
}

// TestCodecRoundTrip: Encode → Decode reproduces an index whose answers
// and re-encoding are identical, for both a metric norm and DTW (whose
// envelopes are rebuilt on decode).
func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		m    distance.Metric
	}{
		{"L21", distance.L21{}},
		{"DTW", distance.DTW{Dependent: true, Window: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			items := testLibrary(40, 9, 3, 0)
			ix, err := Build(items, tc.m, Config{Seed: 5, Tau: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ix.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			encoded := append([]byte(nil), buf.Bytes()...)
			back, err := Decode(&buf, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			q := testFP(9, 3, 123, 0)
			r1, s1, err := ix.KNN(q, 6, nil)
			if err != nil {
				t.Fatal(err)
			}
			r2, s2, err := back.KNN(q, 6, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(r1, r2) || s1 != s2 {
				t.Fatalf("decoded index answers differ: %v/%+v vs %v/%+v", r1, s1, r2, s2)
			}
			var again bytes.Buffer
			if err := back.Encode(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encoded, again.Bytes()) {
				t.Fatal("re-encoding a decoded index is not byte-identical")
			}
		})
	}
}

// TestDecodeRejectsDamage drives the structural validation: every kind of
// damage must surface as a typed sentinel, never a panic or a wrong tree.
func TestDecodeRejectsDamage(t *testing.T) {
	items := testLibrary(12, 6, 2, 0)
	m := distance.L21{}
	ix, err := Build(items, m, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mut func([]byte) []byte) error {
		_, err := Decode(bytes.NewReader(mut(append([]byte(nil), good...))), m)
		return err
	}
	if err := corrupt(func(b []byte) []byte { return b[:len(b)/2] }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
	if err := corrupt(func(b []byte) []byte { b[len(b)-3] ^= 1; return b }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v", err)
	}
	if err := corrupt(func(b []byte) []byte { return bytes.Replace(b, []byte("wpredann"), []byte("wpredsnp"), 1) }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := corrupt(func(b []byte) []byte { return bytes.Replace(b, []byte(" v1 "), []byte(" v9 "), 1) }); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Decode(bytes.NewReader(good), distance.L11{}); !errors.Is(err, ErrMetricMismatch) {
		t.Fatalf("metric mismatch: %v", err)
	}
	if _, err := Decode(bytes.NewReader(nil), m); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty input: %v", err)
	}
}

// TestEdgeIndexes covers the degenerate shapes: empty library, single
// item, and k exceeding the library size.
func TestEdgeIndexes(t *testing.T) {
	m := distance.L21{}
	empty, err := Build(nil, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := testFP(6, 2, 1, 0)
	res, stats, err := empty.KNN(q, 3, nil)
	if err != nil || len(res) != 0 || stats.Total != 0 {
		t.Fatalf("empty index: %v %v %+v", res, err, stats)
	}
	one, err := Build(testLibrary(1, 6, 2, 0), m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = one.KNN(q, 5, nil)
	if err != nil || len(res) != 1 {
		t.Fatalf("single-item index: %v %v", res, err)
	}
	var buf bytes.Buffer
	if err := empty.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if back, err := Decode(&buf, m); err != nil || back.Len() != 0 {
		t.Fatalf("empty round trip: %v %v", back, err)
	}
}

// TestBuildAndQueryErrors covers the argument validation paths.
func TestBuildAndQueryErrors(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Fatal("nil metric accepted")
	}
	if _, err := Build(nil, distance.L21{}, Config{Tau: -1}); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := Build([]Item{{Label: "x"}}, distance.L21{}, Config{}); err == nil {
		t.Fatal("nil fingerprint accepted")
	}
	mismatched := []Item{
		{Label: "a", FP: testFP(4, 2, 1, 0)},
		{Label: "b", FP: testFP(5, 2, 2, 0)},
	}
	if _, err := Build(mismatched, distance.L21{}, Config{}); !errors.Is(err, distance.ErrShape) {
		t.Fatalf("shape mismatch between items: %v", err)
	}
	ix, err := Build(testLibrary(4, 4, 2, 0), distance.L21{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.KNN(nil, 1, nil); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, _, err := ix.KNN(testFP(4, 2, 1, 0), 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := ix.Range(testFP(4, 2, 1, 0), -0.5, nil); err == nil {
		t.Fatal("negative range radius accepted")
	}
}

// TestConcurrentQueries exercises the one-buffer-per-goroutine contract
// under the race detector: an immutable index must serve concurrent KNN
// and Range calls with identical answers.
func TestConcurrentQueries(t *testing.T) {
	items := testLibrary(100, 8, 3, 2)
	ix, err := Build(items, distance.L21{}, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := testFP(8, 3, 55, 2)
	want, _, err := ix.KNN(q, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &QueryBuffer{}
			for i := 0; i < 50; i++ {
				got, _, err := ix.KNN(q, 9, buf)
				if err != nil {
					errs <- err
					return
				}
				if !sameResults(got, want) {
					errs <- errors.New("concurrent query diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
