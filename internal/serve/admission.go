package serve

import "wpred/internal/obs"

// Admission metrics: queue occupancy and backpressure rejections.
var (
	queueDepth = obs.GetGauge("wpred_serve_queue_depth",
		"Prediction work items currently admitted (in flight or queued for a worker).", nil)
	queueLimit = obs.GetGauge("wpred_serve_queue_limit",
		"Admission-queue capacity; requests beyond it are rejected with 429.", nil)
	queueRejected = obs.GetCounter("wpred_serve_rejected_total",
		"Work items rejected with 429 because the admission queue was full.", nil)
)

// admission is the bounded work queue in front of the prediction
// handlers: every target-prediction item (a single request admits one, a
// batch admits one per element) holds a slot for its lifetime. When the
// queue is full, acquisition fails immediately and the handler answers
// 429, so load beyond capacity sheds instead of queuing without bound.
type admission struct {
	slots chan struct{}
}

func newAdmission(capacity int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	queueLimit.Set(float64(capacity))
	return &admission{slots: make(chan struct{}, capacity)}
}

// tryAcquire claims n slots without blocking. It either claims all n and
// returns true, or claims none and returns false — a batch is admitted
// whole or not at all, so two racing batches cannot deadlock on partial
// grants.
func (a *admission) tryAcquire(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case a.slots <- struct{}{}:
		default:
			a.release(i)
			queueRejected.Add(uint64(n))
			return false
		}
	}
	queueDepth.Set(float64(len(a.slots)))
	return true
}

// release returns n slots.
func (a *admission) release(n int) {
	for i := 0; i < n; i++ {
		<-a.slots
	}
	queueDepth.Set(float64(len(a.slots)))
}
