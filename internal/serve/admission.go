package serve

import (
	"strconv"
	"sync/atomic"

	"wpred/internal/obs"
)

// Admission metrics: queue occupancy and backpressure rejections.
var (
	queueDepth = obs.GetGauge("wpred_serve_queue_depth",
		"Prediction work items currently admitted (in flight or queued for a worker).", nil)
	queueLimit = obs.GetGauge("wpred_serve_queue_limit",
		"Admission-queue capacity; requests beyond it are rejected with 429.", nil)
	queueRejected = obs.GetCounter("wpred_serve_rejected_total",
		"Work items rejected with 429 because the admission queue was full.", nil)
)

// admission is the bounded work queue in front of the prediction
// handlers: every target-prediction item (a single request admits one, a
// batch admits one per element) holds a slot for its lifetime. When the
// queue is full, acquisition fails immediately and the handler answers
// 429, so load beyond capacity sheds instead of queuing without bound.
type admission struct {
	slots chan struct{}

	// jitterState drives the Retry-After jitter (a splitmix64 walk seeded
	// from the server seed, advanced atomically per rejection).
	jitterState atomic.Uint64
	// jitterHook, when set, replaces the jittered value — tests inject a
	// deterministic source here.
	jitterHook func() int
}

func newAdmission(capacity int, seed uint64) *admission {
	if capacity < 1 {
		capacity = 1
	}
	queueLimit.Set(float64(capacity))
	a := &admission{slots: make(chan struct{}, capacity)}
	a.jitterState.Store(seed)
	return a
}

// capacity is the queue's total slot count: the largest batch that could
// ever be admitted, even against an idle server.
func (a *admission) capacity() int { return cap(a.slots) }

// retryAfterMaxSecs bounds the jittered Retry-After hint: rejected clients
// are told to come back after 1 to retryAfterMaxSecs seconds.
const retryAfterMaxSecs = 3

// retryAfter renders the Retry-After header for a 429. The value is
// jittered across [1, retryAfterMaxSecs] seconds so the synchronized
// clients produced by a burst rejection do not return as a synchronized
// retry herd that the queue rejects again in lockstep. The jitter is a
// seeded splitmix64 walk: deterministic for a given server seed and
// rejection ordinal, concurrency-safe, and injectable for tests.
func (a *admission) retryAfter() string {
	if a.jitterHook != nil {
		return strconv.Itoa(a.jitterHook())
	}
	x := a.jitterState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return strconv.Itoa(1 + int(x%retryAfterMaxSecs))
}

// tryAcquire claims n slots without blocking. It either claims all n and
// returns true, or claims none and returns false — a batch is admitted
// whole or not at all, so two racing batches cannot deadlock on partial
// grants.
func (a *admission) tryAcquire(n int) bool {
	for i := 0; i < n; i++ {
		select {
		case a.slots <- struct{}{}:
		default:
			a.release(i)
			queueRejected.Add(uint64(n))
			return false
		}
	}
	queueDepth.Set(float64(len(a.slots)))
	return true
}

// release returns n slots.
func (a *admission) release(n int) {
	for i := 0; i < n; i++ {
		<-a.slots
	}
	queueDepth.Set(float64(len(a.slots)))
}
