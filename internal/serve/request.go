// Request decoding and response rendering for the wpredd prediction
// service. The decoder is total: any byte stream either yields a fully
// validated request or a descriptive error — never a panic — which the
// FuzzDecodePredictRequest corpus locks in. Responses are rendered from
// explicit structs with slices in deterministic order (never bare maps
// with float keys or iteration-order dependence), so identical requests
// produce byte-identical bodies regardless of concurrency or cache state.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"wpred/internal/core"
	"wpred/internal/distance"
	"wpred/internal/featsel"
	"wpred/internal/scalemodel"
	"wpred/internal/telemetry"
)

// Request-size guards. The HTTP handlers additionally cap the raw body
// with http.MaxBytesReader; these bound the decoded shape.
const (
	// MaxTargetsPerItem bounds the target experiments in one prediction.
	MaxTargetsPerItem = 64
	// MaxBatchItems bounds the predictions in one /v1/predict/batch call.
	MaxBatchItems = 256
	// maxSKUCPUs bounds the hardware sizes a request may name.
	maxSKUCPUs = 4096
)

// Defaults for the model key when a request leaves a field empty — the
// paper's recommended configuration (RFE-LogReg features, L2,1 norm
// similarity, pairwise SVM scaling models).
const (
	DefaultSelection = "RFE LogReg"
	DefaultMetric    = "L2,1"
	DefaultModel     = "SVM"
)

// skuJSON is the wire form of a hardware configuration.
type skuJSON struct {
	CPUs     int `json:"cpus"`
	MemoryGB int `json:"memory_gb"`
}

// predictRequest is the wire form of one prediction: an optional model
// key (selection × metric × model family), the target SKU, and the target
// workload's telemetry in the wlgen/library experiment format.
type predictRequest struct {
	Selection string            `json:"selection,omitempty"`
	Metric    string            `json:"metric,omitempty"`
	Model     string            `json:"model,omitempty"`
	ToSKU     skuJSON           `json:"to_sku"`
	Target    []json.RawMessage `json:"target"`
}

// batchRequest is the wire form of /v1/predict/batch.
type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// PredictRequest is a decoded, validated prediction request.
type PredictRequest struct {
	// Key is the resolved model-registry key (defaults applied).
	Key Key
	// ToSKU is the prediction's target hardware.
	ToSKU telemetry.SKU
	// Target holds the decoded target experiments.
	Target []*telemetry.Experiment
}

// selectionByName resolves a feature-selection strategy display name
// (featsel.Strategy.Name) case-sensitively. seed feeds the randomized
// strategies so a given server seed always builds the same selector.
func selectionByName(name string, seed uint64) (featsel.Strategy, bool) {
	for _, s := range featsel.AllStrategies(seed) {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// metricByName resolves a similarity measure display name
// (distance.Metric.Name) over the matrix norms and time-series measures.
func metricByName(name string) (distance.Metric, bool) {
	for _, m := range append(distance.Norms(), distance.TimeSeriesMetrics()...) {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// knownNames renders the valid values for an unknown-name error.
func knownNames[T any](all []T, name func(T) string) string {
	names := make([]string, len(all))
	for i, v := range all {
		names[i] = name(v)
	}
	sort.Strings(names)
	return fmt.Sprintf("%q", names)
}

// errTooLarge marks a request the handler should reject with 413.
var errTooLarge = errors.New("serve: request body too large")

// decodePredictRequest decodes and validates one prediction request. Every
// failure is a client error: malformed JSON, unknown top-level fields,
// unknown algorithm names, out-of-range SKUs, and empty or oversized
// target lists are all rejected with descriptive messages.
func decodePredictRequest(r io.Reader) (*PredictRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw predictRequest
	if err := dec.Decode(&raw); err != nil {
		return nil, decodeErr(err)
	}
	if dec.More() {
		return nil, errors.New("serve: trailing data after request object")
	}
	return validatePredictRequest(&raw)
}

// decodeErr normalizes decoder failures, keeping the body-size sentinel
// (http.MaxBytesReader surfaces *http.MaxBytesError through json) distinct
// so the handler can answer 413 instead of 400.
func decodeErr(err error) error {
	if err.Error() == "http: request body too large" {
		return errTooLarge
	}
	return fmt.Errorf("serve: decode request: %w", err)
}

// validateKey applies defaults and resolves the key's algorithm names
// against the live catalogs, shared by the predict and observe decoders.
func validateKey(selection, metric, model string) (Key, error) {
	k := Key{Selection: selection, Metric: metric, Model: model}.withDefaults()
	if _, ok := selectionByName(k.Selection, 0); !ok {
		return Key{}, fmt.Errorf("serve: unknown selection %q (one of %s)",
			k.Selection, knownNames(featsel.AllStrategies(0), featsel.Strategy.Name))
	}
	if _, ok := metricByName(k.Metric); !ok {
		return Key{}, fmt.Errorf("serve: unknown metric %q (one of %s)",
			k.Metric, knownNames(append(distance.Norms(), distance.TimeSeriesMetrics()...), distance.Metric.Name))
	}
	if _, ok := scalemodel.StrategyByName(k.Model); !ok {
		return Key{}, fmt.Errorf("serve: unknown model %q (one of %s)",
			k.Model, knownNames(scalemodel.Strategies(), scalemodel.Strategy.String))
	}
	return k, nil
}

func validatePredictRequest(raw *predictRequest) (*PredictRequest, error) {
	key, err := validateKey(raw.Selection, raw.Metric, raw.Model)
	if err != nil {
		return nil, err
	}
	req := &PredictRequest{Key: key}

	if raw.ToSKU.CPUs < 1 || raw.ToSKU.CPUs > maxSKUCPUs {
		return nil, fmt.Errorf("serve: to_sku.cpus must be in [1, %d], got %d", maxSKUCPUs, raw.ToSKU.CPUs)
	}
	if raw.ToSKU.MemoryGB < 0 {
		return nil, fmt.Errorf("serve: to_sku.memory_gb must be >= 0, got %d", raw.ToSKU.MemoryGB)
	}
	req.ToSKU = telemetry.SKU{CPUs: raw.ToSKU.CPUs, MemoryGB: raw.ToSKU.MemoryGB}
	if req.ToSKU.MemoryGB == 0 {
		// Match the CLI convention: unspecified memory scales 8 GB/CPU.
		req.ToSKU.MemoryGB = 8 * req.ToSKU.CPUs
	}

	if len(raw.Target) == 0 {
		return nil, errors.New("serve: request has no target experiments")
	}
	if len(raw.Target) > MaxTargetsPerItem {
		return nil, fmt.Errorf("serve: %d target experiments exceed the per-request cap of %d", len(raw.Target), MaxTargetsPerItem)
	}
	req.Target = make([]*telemetry.Experiment, len(raw.Target))
	for i, doc := range raw.Target {
		e, err := telemetry.ReadExperiment(bytes.NewReader(doc))
		if err != nil {
			return nil, fmt.Errorf("serve: target[%d]: %w", i, err)
		}
		if !finite(e.Throughput) || !finite(e.MeanLatMS) {
			return nil, fmt.Errorf("serve: target[%d]: non-finite throughput or latency", i)
		}
		req.Target[i] = e
	}
	return req, nil
}

// decodeBatchRequest decodes /v1/predict/batch: a "requests" array whose
// items each validate exactly like a single prediction request.
func decodeBatchRequest(r io.Reader) ([]*PredictRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw batchRequest
	if err := dec.Decode(&raw); err != nil {
		return nil, decodeErr(err)
	}
	if dec.More() {
		return nil, errors.New("serve: trailing data after batch object")
	}
	if len(raw.Requests) == 0 {
		return nil, errors.New("serve: batch has no requests")
	}
	if len(raw.Requests) > MaxBatchItems {
		return nil, fmt.Errorf("serve: %d batch items exceed the cap of %d", len(raw.Requests), MaxBatchItems)
	}
	out := make([]*PredictRequest, len(raw.Requests))
	for i, doc := range raw.Requests {
		req, err := decodePredictRequest(bytes.NewReader(doc))
		if err != nil {
			return nil, fmt.Errorf("serve: requests[%d]: %w", i, err)
		}
		out[i] = req
	}
	return out, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// distanceJSON is one reference-distance table entry.
type distanceJSON struct {
	Workload string  `json:"workload"`
	Distance float64 `json:"distance"`
}

// droppedJSON reports one target experiment rejected by sanitization.
type droppedJSON struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Report   string `json:"report"`
}

// predictResponse is the wire form of a successful prediction. All slices
// are deterministically ordered (distances ascending with name tie-break,
// dropped reports in input order), so the encoded body is byte-identical
// for identical requests.
type predictResponse struct {
	Selection           string         `json:"selection"`
	Metric              string         `json:"metric"`
	Model               string         `json:"model"`
	NearestReference    string         `json:"nearest_reference"`
	Distances           []distanceJSON `json:"distances"`
	FromSKU             skuJSON        `json:"from_sku"`
	ToSKU               skuJSON        `json:"to_sku"`
	ObservedThroughput  float64        `json:"observed_throughput"`
	PredictedThroughput float64        `json:"predicted_throughput"`
	PredictedLo         float64        `json:"predicted_lo"`
	PredictedHi         float64        `json:"predicted_hi"`
	ScalingFactor       float64        `json:"scaling_factor"`
	SelectedFeatures    []string       `json:"selected_features"`
	Dropped             []droppedJSON  `json:"dropped,omitempty"`
}

// renderPrediction builds the response body for one prediction. It fails
// (rather than emitting invalid JSON) if any numeric field is non-finite.
func renderPrediction(key Key, pred *core.Prediction, dropped []core.DroppedExperiment) (*predictResponse, error) {
	for _, v := range []float64{
		pred.ObservedThroughput, pred.PredictedThroughput,
		pred.PredictedLo, pred.PredictedHi, pred.ScalingFactor,
	} {
		if !finite(v) {
			return nil, fmt.Errorf("serve: prediction produced a non-finite value (%v)", v)
		}
	}
	resp := &predictResponse{
		Selection:           key.Selection,
		Metric:              key.Metric,
		Model:               key.Model,
		NearestReference:    pred.NearestReference,
		FromSKU:             skuJSON{CPUs: pred.FromSKU.CPUs, MemoryGB: pred.FromSKU.MemoryGB},
		ToSKU:               skuJSON{CPUs: pred.ToSKU.CPUs, MemoryGB: pred.ToSKU.MemoryGB},
		ObservedThroughput:  pred.ObservedThroughput,
		PredictedThroughput: pred.PredictedThroughput,
		PredictedLo:         pred.PredictedLo,
		PredictedHi:         pred.PredictedHi,
		ScalingFactor:       pred.ScalingFactor,
	}
	names := make([]string, 0, len(pred.Distances))
	for n := range pred.Distances {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool {
		da, db := pred.Distances[names[a]], pred.Distances[names[b]]
		if da != db {
			return da < db
		}
		return names[a] < names[b]
	})
	for _, n := range names {
		if !finite(pred.Distances[n]) {
			return nil, fmt.Errorf("serve: non-finite distance for %s", n)
		}
		resp.Distances = append(resp.Distances, distanceJSON{Workload: n, Distance: pred.Distances[n]})
	}
	for _, f := range pred.SelectedFeatures {
		resp.SelectedFeatures = append(resp.SelectedFeatures, f.String())
	}
	for _, d := range dropped {
		resp.Dropped = append(resp.Dropped, droppedJSON{ID: d.ID, Workload: d.Workload, Report: d.Report.String()})
	}
	return resp, nil
}
