// Package serve is the long-running prediction service behind cmd/wpredd:
// it holds a reference telemetry suite in memory, trains prediction
// pipelines ahead of requests into an LRU-bounded, single-flight model
// registry, and serves single and micro-batched predictions over a
// stdlib-only HTTP JSON API with bounded-queue admission control.
//
// The package holds the repository's determinism bar: responses for
// identical request bodies are byte-identical regardless of worker count,
// cache temperature, or how many requests raced on a cold registry key.
// See "Serving layer" in DESIGN.md for the architecture.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"wpred/internal/core"
	"wpred/internal/drift"
	"wpred/internal/obs"
	"wpred/internal/parallel"
	"wpred/internal/scalemodel"
	"wpred/internal/telemetry"
)

// Config parameterizes a Server. The zero value of every field selects a
// production-safe default.
type Config struct {
	// Refs is the reference telemetry suite loaded once at startup; every
	// registry pipeline trains on it.
	Refs []*telemetry.Experiment
	// Seed drives every randomized component, making responses
	// reproducible across server restarts.
	Seed uint64
	// RegistryCap bounds the model registry (default 8 entries).
	RegistryCap int
	// QueueSlots bounds the admission queue (default 64 work items).
	QueueSlots int
	// MaxBodyBytes caps request bodies (default 8 MiB); larger bodies are
	// rejected with 413.
	MaxBodyBytes int64
	// TopK, Subsamples, and Sanitize pass through to core.Config (zero
	// values select the pipeline defaults).
	TopK       int
	Subsamples int
	Sanitize   telemetry.SanitizePolicy
	// IndexThreshold, IndexK, and IndexTau pass through to core.Config:
	// cold fits against a reference suite at or beyond IndexThreshold
	// same-SKU experiments route nearest-reference lookups through the
	// VP-tree index instead of the exhaustive pairwise matrix (see
	// "Sublinear similarity" in DESIGN.md). Zero values select the
	// pipeline defaults (threshold 256, k 32, τ 0).
	IndexThreshold int
	IndexK         int
	IndexTau       float64
	// SnapshotDir, when non-empty, makes trained models durable: every
	// fit is snapshotted there atomically, cold misses consult it before
	// training (so a fleet sharing one directory never trains a key
	// twice), RestoreSnapshots warm-starts from it, and shutdown persists
	// every resident model. Empty disables durability (the prior
	// in-memory-only behavior).
	SnapshotDir string
	// Drift parameterizes the streaming drift detector behind /v1/observe
	// (see "Drift & forecasting" in DESIGN.md). Zero values select the
	// drift package defaults; a zero Drift.Seed inherits Seed.
	Drift drift.Config
}

func (c Config) withDefaults() Config {
	if c.RegistryCap == 0 {
		c.RegistryCap = 8
	}
	if c.QueueSlots == 0 {
		c.QueueSlots = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the prediction service: handlers, model registry, and
// admission control. Create with New, optionally pre-train with Warmup,
// then expose via Handler or ListenAndServe.
type Server struct {
	cfg      Config
	registry *Registry
	adm      *admission
	snaps    *snapshots
	tracker  *drift.Tracker
	mux      http.Handler
	ready    atomic.Bool

	// refs is the current reference suite every fit and refit trains
	// against; SetRefs swaps it atomically when the workload regime moves.
	refs atomic.Pointer[[]*telemetry.Experiment]

	driftEvents atomic.Uint64
	driftRefits atomic.Uint64

	hs       *http.Server
	listener net.Listener

	// testHookAdmitted, when set, runs after a request's admission-queue
	// slots are acquired and before prediction starts. Tests use it to
	// hold requests in flight deterministically.
	testHookAdmitted func()
	// testHookTrain, when set, runs at the start of every pipeline fit
	// (warmup, cold miss, or refit). Tests use it to hold refits in
	// flight and to count trains.
	testHookTrain func(Key)
	// testHookRefitDone, when set, runs after a drift-triggered refit
	// flight resolves, with the flight's error. Tests use it to wait for
	// background refits without sleeping.
	testHookRefitDone func(Key, error)
}

// New returns a server holding the reference suite in cfg. It does not
// train anything; call Warmup (or let the first request fit lazily).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.refs.Store(&cfg.Refs)
	s.registry = NewRegistry(cfg.RegistryCap, s.trainKey)
	s.adm = newAdmission(cfg.QueueSlots, cfg.Seed)
	s.snaps = newSnapshots(cfg)
	if s.snaps != nil {
		s.registry.SetRestore(s.tryRestore)
	}
	dcfg := cfg.Drift
	if dcfg.Seed == 0 {
		dcfg.Seed = cfg.Seed
	}
	s.tracker = drift.NewTracker(dcfg)

	mux := http.NewServeMux()
	mux.Handle("POST /v1/predict", obs.InstrumentHandler("predict", http.HandlerFunc(s.handlePredict)))
	mux.Handle("POST /v1/predict/batch", obs.InstrumentHandler("predict_batch", http.HandlerFunc(s.handleBatch)))
	mux.Handle("POST /v1/observe", obs.InstrumentHandler("observe", http.HandlerFunc(s.handleObserve)))
	mux.Handle("GET /healthz", obs.InstrumentHandler("healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /readyz", obs.InstrumentHandler("readyz", http.HandlerFunc(s.handleReadyz)))
	s.mux = mux
	return s
}

// Refs returns the reference suite fits currently train against.
func (s *Server) Refs() []*telemetry.Experiment { return *s.refs.Load() }

// SetRefs atomically swaps the reference telemetry suite — the operator's
// lever when the workload regime has genuinely moved. Models already
// resident keep serving (and stay byte-stable) until a drift event
// invalidates their key; fits, refits, and snapshot-compatibility checks
// from this point on see the new suite, so stale snapshots trained on the
// old suite are refit instead of restored.
func (s *Server) SetRefs(refs []*telemetry.Experiment) {
	s.refs.Store(&refs)
	if s.snaps != nil {
		s.snaps.setRefs(refs)
	}
}

// pipelineConfig resolves a registry key's components into the pipeline
// configuration this server trains (and restores) the key under.
func (s *Server) pipelineConfig(k Key) (core.Config, error) {
	sel, ok := selectionByName(k.Selection, s.cfg.Seed)
	if !ok {
		return core.Config{}, fmt.Errorf("serve: unknown selection %q", k.Selection)
	}
	met, ok := metricByName(k.Metric)
	if !ok {
		return core.Config{}, fmt.Errorf("serve: unknown metric %q", k.Metric)
	}
	mod, ok := scalemodel.StrategyByName(k.Model)
	if !ok {
		return core.Config{}, fmt.Errorf("serve: unknown model %q", k.Model)
	}
	return core.Config{
		Selection:      sel,
		Metric:         met,
		Strategy:       mod,
		TopK:           s.cfg.TopK,
		Subsamples:     s.cfg.Subsamples,
		Sanitize:       s.cfg.Sanitize,
		IndexThreshold: s.cfg.IndexThreshold,
		IndexK:         s.cfg.IndexK,
		IndexTau:       s.cfg.IndexTau,
		Seed:           s.cfg.Seed,
	}, nil
}

// trainKey fits one registry entry: it resolves the key's components
// (already validated by the request decoder or Warmup) and trains a
// pipeline on the server's reference suite. With durability enabled, the
// freshly fitted model is snapshotted before it starts serving; a failed
// write degrades durability (counted, surfaced on /healthz) but never the
// fit itself.
func (s *Server) trainKey(k Key) (*core.Pipeline, error) {
	if s.testHookTrain != nil {
		s.testHookTrain(k)
	}
	cfg, err := s.pipelineConfig(k)
	if err != nil {
		return nil, err
	}
	p, err := core.TrainPipeline(cfg, s.Refs())
	if err != nil {
		return nil, err
	}
	if s.snaps.enabled() {
		_ = s.saveSnapshot(k, p)
	}
	return p, nil
}

// Warmup trains the given registry keys (defaults applied; the paper's
// recommended configuration when none are given) and then marks the
// server ready, flipping /readyz from 503 to 200. Call it after the
// listener is up so health probes can watch the transition.
func (s *Server) Warmup(keys ...Key) error {
	if len(keys) == 0 {
		keys = []Key{{}}
	}
	for _, k := range keys {
		if _, err := s.registry.Get(k.withDefaults()); err != nil {
			return fmt.Errorf("serve: warmup %s: %w", k.withDefaults(), err)
		}
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether warmup has completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// RegistryStats exposes the model-registry counters (tests and the
// daemon's shutdown log line).
func (s *Server) RegistryStats() RegistryStats { return s.registry.Stats() }

// Handler returns the service's HTTP handler (the /v1 API plus probes) so
// tests can mount it on httptest servers.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves in a background goroutine,
// returning the bound address once the listener is live (":0" resolves to
// the chosen port). Shut down with Shutdown.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.hs = &http.Server{Handler: s.mux}
	go func() { _ = s.hs.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: it first flips /readyz to 503 so
// load balancers stop routing new work, then closes listeners and waits —
// up to ctx's deadline — for every in-flight request to complete.
// Requests still running when the deadline expires are abandoned
// (context.DeadlineExceeded is returned, matching net/http semantics).
// With durability enabled, every resident model is snapshotted after the
// drain — models are immutable once fitted, so this is safe even when the
// drain times out — and a restarted daemon warm-starts from them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var drainErr error
	if s.hs != nil {
		drainErr = s.hs.Shutdown(ctx)
	}
	if err := s.persistResident(); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := s.persistDriftState(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

// httpError answers a request with a deterministic JSON error body.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// statusFor maps a prediction failure to an HTTP status: sentinel target
// errors are the client's fault (422), anything else is the server's
// (500).
func statusFor(err error) int {
	for _, sentinel := range []error{
		core.ErrNoTargets, core.ErrNoUsableTargets, core.ErrMixedSKUs,
	} {
		if errors.Is(err, sentinel) {
			return http.StatusUnprocessableEntity
		}
	}
	return http.StatusInternalServerError
}

// predictOne resolves one validated request against the registry and runs
// the prediction, returning the rendered response or an error with its
// HTTP status.
func (s *Server) predictOne(req *PredictRequest) (*predictResponse, int, error) {
	p, err := s.registry.Get(req.Key)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	pred, dropped, err := p.PredictWithReport(req.Target, req.ToSKU)
	if err != nil {
		return nil, statusFor(err), err
	}
	resp, err := renderPrediction(req.Key, pred, dropped)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return resp, http.StatusOK, nil
}

// writeJSON encodes v with a stable encoder configuration. Encoding full
// response structs in one shot keeps bodies byte-identical for identical
// requests.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeFailure answers a decoding error: 413 for oversized bodies, 400
// for everything else.
func decodeFailure(w http.ResponseWriter, err error) {
	if errors.Is(err, errTooLarge) {
		httpError(w, http.StatusRequestEntityTooLarge, errTooLarge.Error())
		return
	}
	httpError(w, http.StatusBadRequest, err.Error())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, err := decodePredictRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		decodeFailure(w, err)
		return
	}
	if !s.adm.tryAcquire(1) {
		w.Header().Set("Retry-After", s.adm.retryAfter())
		httpError(w, http.StatusTooManyRequests, "serve: prediction queue full")
		return
	}
	defer s.adm.release(1)
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	resp, code, err := s.predictOne(req)
	if err != nil {
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, code, resp)
}

// batchItemResult is one element of a batch response: either a prediction
// or that item's error, in input order.
type batchItemResult struct {
	Prediction *predictResponse `json:"prediction,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// handleBatch serves micro-batched predictions: the whole batch is
// admitted against the bounded queue at once (429 when it does not fit),
// then fans out through the deterministic parallel engine. Results come
// back in input order and per-item failures do not fail their siblings.
//
// A batch larger than the queue itself can never be admitted — tryAcquire
// cannot grant more slots than exist — so answering it 429 + Retry-After
// would livelock a compliant client into retrying forever. Those batches
// get a non-retryable 413 instead: the client must split the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqs, err := decodeBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		decodeFailure(w, err)
		return
	}
	if len(reqs) > s.adm.capacity() {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("serve: batch of %d items exceeds the queue capacity of %d; split the batch", len(reqs), s.adm.capacity()))
		return
	}
	if !s.adm.tryAcquire(len(reqs)) {
		w.Header().Set("Retry-After", s.adm.retryAfter())
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("serve: %d batch items exceed the queue's free capacity", len(reqs)))
		return
	}
	defer s.adm.release(len(reqs))
	if s.testHookAdmitted != nil {
		s.testHookAdmitted()
	}
	results, _ := parallel.Map(len(reqs), func(i int) (batchItemResult, error) {
		resp, _, err := s.predictOne(reqs[i])
		if err != nil {
			return batchItemResult{Error: err.Error()}, nil
		}
		return batchItemResult{Prediction: resp}, nil
	})
	writeJSON(w, http.StatusOK, struct {
		Results []batchItemResult `json:"results"`
	}{results})
}

// probeJSON is the health/readiness payload. The snapshot section (absent
// when durability is off) lets the router and operators distinguish a
// cold instance from a warm-restored one and watch durability degrade
// (write errors, skipped restores) before a restart depends on it.
type probeJSON struct {
	Status    string              `json:"status"`
	Snapshots *snapshotStatusJSON `json:"snapshots,omitempty"`
	Drift     *driftStatusJSON    `json:"drift,omitempty"`
}

// handleHealthz reports process liveness: 200 as long as the handler can
// run at all, with the snapshot/durability and drift status alongside.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, probeJSON{
		Status:    "ok",
		Snapshots: s.snapshotStatus(),
		Drift:     s.driftStatus(),
	})
}

// handleReadyz reports readiness: 503 until RestoreSnapshots and Warmup
// complete (and again once Shutdown begins), 200 in between.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ready", http.StatusOK
	if !s.ready.Load() {
		status, code = "warming up", http.StatusServiceUnavailable
		if s.snaps != nil && s.snaps.restorePending.Load() {
			status = "restoring snapshots"
		}
	}
	writeJSON(w, code, probeJSON{Status: status, Snapshots: s.snapshotStatus()})
}
