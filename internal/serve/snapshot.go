package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wpred/internal/core"
	"wpred/internal/obs"
	"wpred/internal/snapshot"
	"wpred/internal/telemetry"
)

// Snapshot metrics (see "Durability & fleet" in DESIGN.md).
var (
	snapWrites = obs.GetCounter("wpred_serve_snapshot_writes_total",
		"Snapshots written to the snapshot directory (on fit and on drain).", nil)
	snapWriteErrs = obs.GetCounter("wpred_serve_snapshot_write_errors_total",
		"Snapshot writes that failed; serving continues, durability degrades.", nil)
	snapRestoreSkips = obs.GetCounter("wpred_serve_snapshot_skipped_total",
		"Snapshots on disk that were not restored: corrupt, stale, or trained under a different configuration.", nil)
	snapLastWrite = obs.GetGauge("wpred_serve_snapshot_last_write_unix",
		"Unix time of the last successful snapshot write (0 before the first).", nil)
)

// snapshots is the server's durability state: the on-disk store, the
// reference-suite fingerprint restores are validated against, and the
// counters the health payloads expose.
type snapshots struct {
	store *snapshot.Store

	// hashMu guards the reference-suite fingerprint, which SetRefs swaps
	// at runtime: snapshots trained against a superseded suite must fail
	// the compatibility check from the moment the swap happens. hashErr
	// records a failure to fingerprint the suite; saves and restores are
	// disabled (never silently mismatched) while set.
	hashMu   sync.RWMutex
	refsHash string
	hashErr  error

	restorePending atomic.Bool
	restored       atomic.Uint64
	written        atomic.Uint64
	writeErrs      atomic.Uint64
	skipped        atomic.Uint64
	lastWriteUnix  atomic.Int64
}

// setRefs re-fingerprints the reference suite after a SetRefs swap.
func (sn *snapshots) setRefs(refs []*telemetry.Experiment) {
	h, err := snapshot.SuiteHash(refs)
	sn.hashMu.Lock()
	sn.refsHash, sn.hashErr = h, err
	sn.hashMu.Unlock()
}

// fingerprint returns the current reference-suite hash (or the error that
// disabled durability).
func (sn *snapshots) fingerprint() (string, error) {
	sn.hashMu.RLock()
	defer sn.hashMu.RUnlock()
	return sn.refsHash, sn.hashErr
}

// enabled reports whether durable snapshots are configured and usable.
func (sn *snapshots) enabled() bool {
	if sn == nil || sn.store == nil {
		return false
	}
	_, err := sn.fingerprint()
	return err == nil
}

// newSnapshots builds the durability state for a server, or nil when no
// snapshot directory is configured.
func newSnapshots(cfg Config) *snapshots {
	if cfg.SnapshotDir == "" {
		return nil
	}
	sn := &snapshots{store: snapshot.NewStore(cfg.SnapshotDir)}
	sn.setRefs(cfg.Refs)
	sn.restorePending.Store(true)
	return sn
}

// snapshotFor wraps a trained pipeline in its on-disk form, stamping the
// configuration identity restores are checked against.
func (s *Server) snapshotFor(k Key, p *core.Pipeline) (*snapshot.Snapshot, error) {
	st, err := p.State()
	if err != nil {
		return nil, err
	}
	hash, err := s.snaps.fingerprint()
	if err != nil {
		return nil, err
	}
	return &snapshot.Snapshot{
		Selection:   k.Selection,
		Metric:      k.Metric,
		Model:       k.Model,
		Seed:        s.cfg.Seed,
		TopK:        s.cfg.TopK,
		Subsamples:  s.cfg.Subsamples,
		Sanitize:    s.cfg.Sanitize,
		RefsHash:    hash,
		CreatedUnix: time.Now().Unix(),
		State:       st,
	}, nil
}

// saveSnapshot persists one registry entry. Failures degrade durability,
// not availability: they are counted and surfaced on /healthz but never
// fail the fit that produced the model.
func (s *Server) saveSnapshot(k Key, p *core.Pipeline) error {
	snap, err := s.snapshotFor(k, p)
	if err == nil {
		err = s.snaps.store.Save(snap)
	}
	if err != nil {
		s.snaps.writeErrs.Add(1)
		snapWriteErrs.Inc()
		return fmt.Errorf("serve: snapshot %s: %w", k, err)
	}
	s.snaps.written.Add(1)
	snapWrites.Inc()
	s.snaps.lastWriteUnix.Store(snap.CreatedUnix)
	snapLastWrite.Set(float64(snap.CreatedUnix))
	return nil
}

// compatible reports whether a snapshot was trained under this server's
// exact configuration — same seed, pipeline knobs, sanitize policy, and
// reference suite. Anything else would serve predictions that diverge
// from what this server would train, so it is refit instead.
func (s *Server) compatible(snap *snapshot.Snapshot) bool {
	hash, err := s.snaps.fingerprint()
	return err == nil &&
		snap.Seed == s.cfg.Seed &&
		snap.TopK == s.cfg.TopK &&
		snap.Subsamples == s.cfg.Subsamples &&
		snap.Sanitize == s.cfg.Sanitize &&
		snap.RefsHash == hash
}

// restorePipeline validates a snapshot's key against the live algorithm
// catalog and reconstructs its trained pipeline without refitting.
func (s *Server) restorePipeline(snap *snapshot.Snapshot) (Key, *core.Pipeline, error) {
	k := Key{Selection: snap.Selection, Metric: snap.Metric, Model: snap.Model}
	cfg, err := s.pipelineConfig(k)
	if err != nil {
		return k, nil, err
	}
	p, err := core.Restore(cfg, snap.State)
	return k, p, err
}

// tryRestore is the registry's lazy restore hook: on a cold miss it loads
// the key's snapshot if a compatible one exists on disk — covering both a
// restarted daemon's own models and, with a shared snapshot directory,
// models a fleet sibling already trained.
func (s *Server) tryRestore(k Key) (*core.Pipeline, bool) {
	if !s.snaps.enabled() {
		return nil, false
	}
	snap, err := s.snaps.store.Load(k.Selection, k.Metric, k.Model)
	if err != nil {
		return nil, false
	}
	if !s.compatible(snap) {
		s.snaps.skipped.Add(1)
		snapRestoreSkips.Inc()
		return nil, false
	}
	_, p, err := s.restorePipeline(snap)
	if err != nil {
		s.snaps.skipped.Add(1)
		snapRestoreSkips.Inc()
		return nil, false
	}
	return p, true
}

// RestoreSnapshots warm-starts the registry from the snapshot directory:
// every compatible snapshot becomes a resident model with zero refits.
// Corrupt, stale, or configuration-mismatched snapshots are skipped (and
// counted), never served. Call it after New and before Warmup so /readyz
// stays 503 until the restore has completed; the error return is reserved
// for a durability setup so broken that snapshots cannot work at all.
func (s *Server) RestoreSnapshots() (restored, skipped int, err error) {
	if s.snaps == nil {
		return 0, 0, nil
	}
	defer s.snaps.restorePending.Store(false)
	if _, err := s.snaps.fingerprint(); err != nil {
		return 0, 0, fmt.Errorf("serve: snapshots disabled: %w", err)
	}
	snaps, errs := s.snaps.store.LoadAll()
	skipped += len(errs)
	for _, snap := range snaps {
		if !s.compatible(snap) {
			skipped++
			continue
		}
		k, p, rerr := s.restorePipeline(snap)
		if rerr != nil {
			skipped++
			continue
		}
		s.registry.Put(k.withDefaults(), p)
		restored++
	}
	s.snaps.restored.Add(uint64(restored))
	s.snaps.skipped.Add(uint64(skipped))
	for i := 0; i < skipped; i++ {
		snapRestoreSkips.Inc()
	}
	s.restoreDriftState()
	return restored, skipped, nil
}

// persistResident snapshots every successfully trained resident model —
// the SIGTERM drain path, which also repairs any on-fit snapshot write
// that failed transiently. It returns the first error (all writes are
// still attempted).
func (s *Server) persistResident() error {
	if !s.snaps.enabled() {
		return nil
	}
	var first error
	for k, p := range s.registry.Resident() {
		if err := s.saveSnapshot(k, p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// snapshotStatusJSON is the snapshot section of the health payloads: it
// lets the router and operators tell a cold instance from a warm one and
// spot degrading durability (write errors) before a restart needs it.
type snapshotStatusJSON struct {
	Enabled          bool   `json:"enabled"`
	RestorePending   bool   `json:"restore_pending"`
	Restored         uint64 `json:"restored"`
	Written          uint64 `json:"written"`
	WriteErrors      uint64 `json:"write_errors"`
	Skipped          uint64 `json:"skipped"`
	LastSnapshotUnix int64  `json:"last_snapshot_unix"`
}

// snapshotStatus renders the health-payload section (nil when snapshots
// are not configured, which omits the section entirely).
func (s *Server) snapshotStatus() *snapshotStatusJSON {
	if s.snaps == nil {
		return nil
	}
	return &snapshotStatusJSON{
		Enabled:          s.snaps.enabled(),
		RestorePending:   s.snaps.restorePending.Load(),
		Restored:         s.snaps.restored.Load(),
		Written:          s.snaps.written.Load(),
		WriteErrors:      s.snaps.writeErrs.Load(),
		Skipped:          s.snaps.skipped.Load(),
		LastSnapshotUnix: s.snaps.lastWriteUnix.Load(),
	}
}
