package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wpred/internal/bench"
	"wpred/internal/parallel"
	"wpred/internal/simdb"
	"wpred/internal/telemetry"
)

// Cheap test configuration: variance-threshold selection and a linear
// scaling model keep each registry fit fast enough for the race detector,
// while still running the full train/predict path.
const (
	testSelection = "Variance"
	testMetric    = "L2,1"
	testModel     = "Regression"
)

var (
	refsOnce sync.Once
	testRefs []*telemetry.Experiment
	testTgts []*telemetry.Experiment
)

// suite simulates a small reference suite (three benchmarks on 2- and
// 4-CPU SKUs) and a YCSB target profiled on the 2-CPU SKU, shared across
// tests — generation is deterministic and the suite is read-only.
func suite(t *testing.T) (refs, targets []*telemetry.Experiment) {
	t.Helper()
	refsOnce.Do(func() {
		skus := []telemetry.SKU{{CPUs: 2, MemoryGB: 16}, {CPUs: 4, MemoryGB: 32}}
		src := telemetry.NewSource(42)
		testRefs = bench.GenerateSuite(bench.Standard()[:3], skus, []int{4}, 2, src)
		ycsb, err := bench.ByName("YCSB")
		if err != nil {
			panic(err)
		}
		testTgts = bench.GenerateSuite([]*simdb.Workload{ycsb}, skus[:1], []int{4}, 2, src)
	})
	if len(testRefs) == 0 || len(testTgts) == 0 {
		t.Fatal("test suite generation produced no experiments")
	}
	return testRefs, testTgts
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	refs, _ := suite(t)
	if cfg.Refs == nil {
		cfg.Refs = refs
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg)
}

// predictBody renders a /v1/predict request for the shared target.
func predictBody(t *testing.T, toCPUs int) []byte {
	t.Helper()
	_, targets := suite(t)
	return marshalPredict(t, targets, toCPUs)
}

func marshalPredict(t *testing.T, targets []*telemetry.Experiment, toCPUs int) []byte {
	t.Helper()
	raw := predictRequest{
		Selection: testSelection,
		Metric:    testMetric,
		Model:     testModel,
		ToSKU:     skuJSON{CPUs: toCPUs},
	}
	for _, e := range targets {
		var buf bytes.Buffer
		if err := telemetry.WriteExperiment(&buf, e); err != nil {
			t.Fatal(err)
		}
		raw.Target = append(raw.Target, json.RawMessage(buf.Bytes()))
	}
	body, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestPredictRoundTrip exercises the single-prediction path end to end:
// decode, registry fit, predict, and a fully populated deterministic
// response body.
func TestPredictRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post(t, ts.URL+"/v1/predict", predictBody(t, 4))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("invalid response JSON: %v\n%s", err, body)
	}
	if resp.Selection != testSelection || resp.Metric != testMetric || resp.Model != testModel {
		t.Errorf("response key = %s/%s/%s, want %s/%s/%s",
			resp.Selection, resp.Metric, resp.Model, testSelection, testMetric, testModel)
	}
	if resp.NearestReference == "" {
		t.Error("nearest_reference empty")
	}
	if resp.PredictedThroughput <= 0 {
		t.Errorf("predicted_throughput = %v, want > 0", resp.PredictedThroughput)
	}
	if resp.ToSKU.CPUs != 4 || resp.ToSKU.MemoryGB != 32 {
		t.Errorf("to_sku = %+v, want 4 CPUs / 32 GB (memory defaulted)", resp.ToSKU)
	}
	if len(resp.Distances) == 0 {
		t.Fatal("no reference distances")
	}
	for i := 1; i < len(resp.Distances); i++ {
		if resp.Distances[i].Distance < resp.Distances[i-1].Distance {
			t.Errorf("distances not ascending at %d: %v", i, resp.Distances)
		}
	}
	if resp.Distances[0].Workload != resp.NearestReference {
		t.Errorf("first distance %q != nearest reference %q", resp.Distances[0].Workload, resp.NearestReference)
	}
	if len(resp.SelectedFeatures) == 0 {
		t.Error("no selected features")
	}
}

// TestResponsesByteIdenticalAcrossCacheAndConcurrency is the serving
// layer's determinism bar: the same request body yields byte-identical
// responses whether the registry is cold or warm, whether the request ran
// alone or raced seven siblings onto a cold key, and whether the parallel
// engine uses one worker or eight.
func TestResponsesByteIdenticalAcrossCacheAndConcurrency(t *testing.T) {
	body := predictBody(t, 4)

	// Baseline: cold fit at one worker.
	prevWorkers := parallel.SetMaxWorkers(1)
	defer parallel.SetMaxWorkers(prevWorkers)
	s1 := newTestServer(t, Config{})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	code, cold := post(t, ts1.URL+"/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("cold request failed: %d %s", code, cold)
	}
	_, warm := post(t, ts1.URL+"/v1/predict", body)
	if !bytes.Equal(cold, warm) {
		t.Errorf("cache-cold and cache-warm responses differ:\n%s\nvs\n%s", cold, warm)
	}

	// Warmed-up fresh server at eight workers, requests racing on a cold
	// non-default key (the test key is not the warmup default).
	parallel.SetMaxWorkers(8)
	s2 := newTestServer(t, Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	const n = 8
	results := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts2.URL+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = []byte("error: " + err.Error())
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				b = append([]byte(fmt.Sprintf("status %d: ", resp.StatusCode)), b...)
			}
			results[i] = b
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !bytes.Equal(r, cold) {
			t.Fatalf("concurrent response %d differs from 1-worker cold response:\n%s\nvs\n%s", i, r, cold)
		}
	}
	if st := s2.RegistryStats(); st.Fits != 1 {
		t.Errorf("8 racing requests on one cold key trained %d pipelines, want 1 (single-flight)", st.Fits)
	}
}

// TestBatchRoundTripDeterministicAcrossWorkers checks the micro-batch
// path: results come back in input order, per-item errors do not fail
// siblings, an item's prediction matches the single endpoint's, and the
// whole batch body is byte-identical at one and eight workers.
func TestBatchRoundTripDeterministicAcrossWorkers(t *testing.T) {
	body := predictBody(t, 4)
	bad := bytes.Replace(predictBody(t, 4), []byte(`"cpus":4`), []byte(`"cpus":16`), 1)
	batch, err := json.Marshal(batchRequest{Requests: []json.RawMessage{body, bad, body}})
	if err != nil {
		t.Fatal(err)
	}

	runBatch := func(workers int) []byte {
		prev := parallel.SetMaxWorkers(workers)
		defer parallel.SetMaxWorkers(prev)
		s := newTestServer(t, Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, out := post(t, ts.URL+"/v1/predict/batch", batch)
		if code != http.StatusOK {
			t.Fatalf("batch at %d workers: status %d: %s", workers, code, out)
		}
		return out
	}

	serial := runBatch(1)
	wide := runBatch(8)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("batch response differs between 1 and 8 workers:\n%s\nvs\n%s", serial, wide)
	}

	var decoded struct {
		Results []struct {
			Prediction *predictResponse `json:"prediction"`
			Error      string           `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(serial, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(decoded.Results))
	}
	if decoded.Results[0].Prediction == nil || decoded.Results[2].Prediction == nil {
		t.Fatalf("items 0 and 2 should succeed: %s", serial)
	}
	// Item 1 extrapolates to an unprofiled 16-CPU SKU with a pairwise
	// model, which cannot fit — its failure must be isolated.
	if decoded.Results[1].Error == "" {
		t.Error("item 1 (unprofiled SKU) should report an error")
	}

	// A batch item's prediction equals the single endpoint's.
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, single := post(t, ts.URL+"/v1/predict", body)
	one, err := json.Marshal(decoded.Results[0].Prediction)
	if err != nil {
		t.Fatal(err)
	}
	var viaSingle predictResponse
	if err := json.Unmarshal(single, &viaSingle); err != nil {
		t.Fatal(err)
	}
	viaSingleJSON, _ := json.Marshal(&viaSingle)
	if !bytes.Equal(one, viaSingleJSON) {
		t.Errorf("batch item prediction differs from single endpoint:\n%s\nvs\n%s", one, viaSingleJSON)
	}
}

// TestBatchOverCapacityReturns413 sends a batch larger than the whole
// admission queue. tryAcquire can never grant more slots than the queue
// holds, so a 429 + Retry-After here would livelock a compliant client
// into retrying a request that cannot ever succeed (the bug this test
// regression-locks); the server must answer a non-retryable 413 telling
// the client to split the batch. Then it verifies the queue was not
// leaked: a small request still succeeds.
func TestBatchOverCapacityReturns413(t *testing.T) {
	s := newTestServer(t, Config{QueueSlots: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := predictBody(t, 4)
	batch, err := json.Marshal(batchRequest{Requests: []json.RawMessage{body, body, body}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict/batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("3-item batch against 2 queue slots: status %d, want non-retryable 413: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("413 response carries Retry-After; an unservable batch must not invite retries")
	}
	if !strings.Contains(string(b), "queue capacity") {
		t.Errorf("413 body should name the queue capacity so clients know to split: %s", b)
	}

	if code, out := post(t, ts.URL+"/v1/predict", body); code != http.StatusOK {
		t.Fatalf("single request after rejected batch: status %d (queue slots leaked?): %s", code, out)
	}
}

// TestBatchQueueBusyReturns429 sends a batch that fits the queue's total
// capacity but not its current free space: that rejection is transient, so
// it must keep the retryable 429 + Retry-After shape.
func TestBatchQueueBusyReturns429(t *testing.T) {
	s := newTestServer(t, Config{QueueSlots: 2})
	admitted := make(chan struct{})
	unblock := make(chan struct{})
	var hookOnce sync.Once
	s.testHookAdmitted = func() {
		hookOnce.Do(func() {
			close(admitted)
			<-unblock
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := predictBody(t, 4)
	errc := make(chan error, 1)
	go func() {
		code, out := post(t, ts.URL+"/v1/predict", body)
		if code != http.StatusOK {
			errc <- fmt.Errorf("held request: status %d: %s", code, out)
			return
		}
		errc <- nil
	}()
	<-admitted // one of two slots held in flight

	batch, err := json.Marshal(batchRequest{Requests: []json.RawMessage{body, body}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict/batch", "application/json", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("2-item batch with 1 of 2 slots free: status %d, want 429: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	close(unblock)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestInFlightSaturationReturns429 saturates the queue with a genuinely
// in-flight request (held by the test hook) and expects the next request
// to shed with 429 rather than queue.
func TestInFlightSaturationReturns429(t *testing.T) {
	s := newTestServer(t, Config{QueueSlots: 1})
	admitted := make(chan struct{})
	unblock := make(chan struct{})
	var hookOnce sync.Once
	s.testHookAdmitted = func() {
		hookOnce.Do(func() {
			close(admitted)
			<-unblock
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := predictBody(t, 4)
	errc := make(chan error, 1)
	go func() {
		code, out := post(t, ts.URL+"/v1/predict", body)
		if code != http.StatusOK {
			errc <- fmt.Errorf("held request: status %d: %s", code, out)
			return
		}
		errc <- nil
	}()
	<-admitted

	code, _ := post(t, ts.URL+"/v1/predict", body)
	if code != http.StatusTooManyRequests {
		t.Errorf("request while queue saturated: status %d, want 429", code)
	}
	close(unblock)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestReadyzFlipsAfterWarmup asserts the readiness lifecycle: alive but
// not ready before warmup, ready after, and the warmup fit lands in the
// registry so the first real request is a cache hit.
func TestReadyzFlipsAfterWarmup(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz before warmup: %d, want 200", code)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before warmup: %d, want 503: %s", code, body)
	}

	if err := s.Warmup(Key{Selection: testSelection, Metric: testMetric, Model: testModel}); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after warmup: %d, want 200: %s", code, body)
	}
	if st := s.RegistryStats(); st.Fits != 1 || st.Entries != 1 {
		t.Errorf("after warmup: fits=%d entries=%d, want 1/1", st.Fits, st.Entries)
	}
	if code, _ := post(t, ts.URL+"/v1/predict", predictBody(t, 4)); code != http.StatusOK {
		t.Fatal("warmed request failed")
	}
	if st := s.RegistryStats(); st.Fits != 1 || st.Hits != 1 {
		t.Errorf("warmed request: fits=%d hits=%d, want fits=1 hits=1", st.Fits, st.Hits)
	}
}

// TestGracefulShutdownDrains holds a request in flight, starts Shutdown,
// and asserts the drain contract: Shutdown waits for the request, the
// request completes successfully with a full body, readiness flips off,
// and new connections are refused afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.Warmup(Key{Selection: testSelection, Metric: testMetric, Model: testModel}); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	unblock := make(chan struct{})
	var hookOnce sync.Once
	s.testHookAdmitted = func() {
		hookOnce.Do(func() {
			close(admitted)
			<-unblock
		})
	}
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		body []byte
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/predict", "application/json", bytes.NewReader(predictBody(t, 4)))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		reqDone <- result{code: resp.StatusCode, body: b, err: err}
	}()
	<-admitted

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must not complete while the request is still in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight request finished", err)
	case <-time.After(200 * time.Millisecond):
	}
	if s.Ready() {
		t.Error("server still ready during drain")
	}

	close(unblock)
	r := <-reqDone
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d: %s", r.code, r.body)
	}
	var resp predictResponse
	if err := json.Unmarshal(r.body, &resp); err != nil {
		t.Fatalf("drained request returned a truncated body: %v\n%s", err, r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}

	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("connections still accepted after Shutdown returned")
	}
}

// TestRequestValidationStatuses covers the client-error surface: bad
// JSON, unknown algorithms, empty targets, wrong method, oversized
// bodies, and target errors that surface from the pipeline.
func TestRequestValidationStatuses(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 256 << 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	small := predictBody(t, 4)
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"malformed JSON", []byte(`{"to_sku":`), http.StatusBadRequest},
		{"unknown field", []byte(`{"bogus":1}`), http.StatusBadRequest},
		{"unknown model", bytes.Replace(small, []byte(`"Regression"`), []byte(`"Oracle"`), 1), http.StatusBadRequest},
		{"no targets", []byte(`{"to_sku":{"cpus":4}}`), http.StatusBadRequest},
		{"zero cpus", bytes.Replace(small, []byte(`"to_sku":{"cpus":4,"memory_gb":0}`), []byte(`"to_sku":{"cpus":0,"memory_gb":0}`), 1), http.StatusBadRequest},
		{"oversized", append(append([]byte(nil), small[:len(small)-1]...), bytes.Repeat([]byte(" "), 300<<10)...), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts.URL+"/v1/predict", tc.body)
			if code != tc.want {
				t.Errorf("status %d, want %d: %s", code, tc.want, body)
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		if code, _ := get(t, ts.URL+"/v1/predict"); code != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/predict: %d, want 405", code)
		}
	})

	t.Run("mixed-SKU targets", func(t *testing.T) {
		refs, targets := suite(t)
		var other *telemetry.Experiment
		for _, e := range refs {
			if e.SKU.CPUs != targets[0].SKU.CPUs {
				other = e
				break
			}
		}
		if other == nil {
			t.Fatal("no reference on a different SKU")
		}
		mixed := append(append([]*telemetry.Experiment(nil), targets...), other)
		code, body := post(t, ts.URL+"/v1/predict", marshalPredict(t, mixed, 4))
		if code != http.StatusUnprocessableEntity {
			t.Errorf("mixed SKUs: status %d, want 422: %s", code, body)
		}
	})
}
