package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wpred/internal/bench"
	"wpred/internal/telemetry"
)

// observeBody renders a /v1/observe request for one feedback observation.
func observeBody(t *testing.T, k Key, tick int64, observed, predicted float64) []byte {
	t.Helper()
	body, err := json.Marshal(observeRequest{
		Selection: k.Selection,
		Metric:    k.Metric,
		Model:     k.Model,
		Tick:      tick,
		Observed:  observed,
		Predicted: predicted,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// marshalPredictKey renders a /v1/predict request for the shared target
// against an explicit registry key.
func marshalPredictKey(t *testing.T, k Key, toCPUs int) []byte {
	t.Helper()
	_, targets := suite(t)
	raw := predictRequest{
		Selection: k.Selection,
		Metric:    k.Metric,
		Model:     k.Model,
		ToSKU:     skuJSON{CPUs: toCPUs},
	}
	for _, e := range targets {
		var buf strings.Builder
		if err := telemetry.WriteExperiment(&buf, e); err != nil {
			t.Fatal(err)
		}
		raw.Target = append(raw.Target, json.RawMessage(buf.String()))
	}
	body, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

var (
	perturbedOnce sync.Once
	perturbedSet  []*telemetry.Experiment
)

// perturbedRefs simulates the reference suite after a regime change: the
// same benchmarks and SKUs regenerated from a different seed, so models
// refit against it genuinely predict differently.
func perturbedRefs(t *testing.T) []*telemetry.Experiment {
	t.Helper()
	perturbedOnce.Do(func() {
		skus := []telemetry.SKU{{CPUs: 2, MemoryGB: 16}, {CPUs: 4, MemoryGB: 32}}
		perturbedSet = bench.GenerateSuite(bench.Standard()[:3], skus, []int{4}, 2, telemetry.NewSource(4242))
	})
	if len(perturbedSet) == 0 {
		t.Fatal("perturbed suite generation produced no experiments")
	}
	return perturbedSet
}

// TestObserveRejectsMalformedRequests pins the /v1/observe rejection
// semantics: malformed bodies never reach the drift tracker.
func TestObserveRejectsMalformedRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/observe"

	good := Key{Selection: testSelection, Metric: testMetric, Model: testModel}
	cases := []struct {
		name string
		body string
	}{
		{"truncated JSON", `{"tick": 1,`},
		{"unknown field", `{"tick": 1, "observed": 2, "predicted": 2, "bogus": true}`},
		{"trailing data", `{"tick": 1, "observed": 2, "predicted": 2}{"again": true}`},
		{"overflowing observed", `{"tick": 1, "observed": 1e999, "predicted": 2}`},
		{"NaN via string", `{"tick": 1, "observed": "NaN", "predicted": 2}`},
		{"unknown selection", `{"selection": "NoSuchStrategy", "tick": 1, "observed": 2, "predicted": 2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _ := post(t, url, []byte(tc.body))
			if code != 400 {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
	if _, _, events, _ := s.tracker.Stats(); events != 0 {
		t.Errorf("rejected requests produced %d drift events", events)
	}

	// A well-formed observation with defaults applied lands in the tracker.
	code, body := post(t, url, observeBody(t, good, 1, 101, 100))
	if code != 200 {
		t.Fatalf("valid observation: status = %d, body %s", code, body)
	}
	if keys, observations, _, _ := s.tracker.Stats(); keys != 1 || observations != 1 {
		t.Errorf("tracker stats = (%d keys, %d obs), want (1, 1)", keys, observations)
	}
}

// driftRunResult captures everything one end-to-end drift-loop run
// produces that determinism can be asserted over.
type driftRunResult struct {
	preA, preB   []byte // predictions before the regime change
	midA, midB   []byte // predictions while the refit is held in flight
	postA, postB []byte // predictions after the refit swapped models
	refitsSeen   int    // observe responses that reported refit=true
	eventsSeen   int    // observe responses that reported status "drift"
	stats        RegistryStats
}

// runDriftScenario drives one full drift loop end to end: warm two keys,
// swap the reference suite (the regime genuinely moves), stream a seeded
// abrupt demand shift through /v1/observe against key B, hold the
// triggered background refit in flight while proving the stale model still
// serves, then release it and capture the post-refit predictions.
func runDriftScenario(t *testing.T) driftRunResult {
	t.Helper()
	kA := Key{Selection: testSelection, Metric: testMetric, Model: testModel}
	kB := Key{Selection: testSelection, Metric: testMetric, Model: "LMM"}

	s := newTestServer(t, Config{})

	// Hold the drift-triggered refit of kB in flight until released; armed
	// keeps the warmup fits out of the trap.
	var armed atomic.Bool
	var enteredOnce sync.Once
	refitEntered := make(chan struct{})
	refitRelease := make(chan struct{})
	s.testHookTrain = func(k Key) {
		if armed.Load() && k == kB {
			enteredOnce.Do(func() { close(refitEntered) })
			<-refitRelease
		}
	}
	refitDone := make(chan error, 4)
	s.testHookRefitDone = func(_ Key, err error) { refitDone <- err }

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	predictURL, observeURL := ts.URL+"/v1/predict", ts.URL+"/v1/observe"

	if err := s.Warmup(kA, kB); err != nil {
		t.Fatal(err)
	}
	bodyA, bodyB := marshalPredictKey(t, kA, 4), marshalPredictKey(t, kB, 4)
	res := driftRunResult{}
	mustPredict := func(body []byte) []byte {
		code, resp := post(t, predictURL, body)
		if code != 200 {
			t.Fatalf("predict: status = %d, body %s", code, resp)
		}
		return resp
	}
	res.preA, res.preB = mustPredict(bodyA), mustPredict(bodyB)

	// The workload regime moves: refits from here on train against the
	// perturbed suite, so the eventual refit genuinely changes predictions.
	s.SetRefs(perturbedRefs(t))
	armed.Store(true)

	// Stream the seeded abrupt demand shift as feedback for kB. The
	// predictions in the stream assume the pre-shift level, exactly what
	// the stale model would keep saying.
	scen, err := bench.GenerateDemand(bench.DriftAbrupt, 500, telemetry.NewSource(7).Child("serve/e2e"))
	if err != nil {
		t.Fatal(err)
	}
	feed := func(i int) observeResponse {
		code, raw := post(t, observeURL, observeBody(t, kB, int64(i), scen.Series[i], scen.Level))
		if code != 200 {
			t.Fatalf("observe tick %d: status = %d, body %s", i, code, raw)
		}
		var resp observeResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("observe tick %d: %v", i, err)
		}
		if resp.Status == "drift" {
			res.eventsSeen++
			if resp.Refit {
				res.refitsSeen++
			}
		}
		return resp
	}
	next := len(scen.Series)
	for i := range scen.Series {
		if resp := feed(i); resp.Refit {
			if resp.Kind != "abrupt" {
				t.Errorf("drift kind = %q, want abrupt", resp.Kind)
			}
			onset := resp.OnsetIndex
			if onset < scen.Changes[0]-10 || onset > scen.Changes[0]+40 {
				t.Errorf("onset index = %d, want near the true change at %d", onset, scen.Changes[0])
			}
			next = i + 1
			break
		}
	}
	if next == len(scen.Series) {
		t.Fatal("no drift event confirmed over the whole abrupt stream")
	}

	// The refit is now held in flight by the train hook: the stale models
	// must keep serving byte-identically, with zero errors.
	select {
	case <-refitEntered:
	case <-time.After(30 * time.Second):
		t.Fatal("drift-triggered refit never started training")
	}
	res.midA, res.midB = mustPredict(bodyA), mustPredict(bodyB)
	close(refitRelease)
	select {
	case err := <-refitDone:
		if err != nil {
			t.Fatalf("background refit failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("background refit never completed")
	}
	res.postA, res.postB = mustPredict(bodyA), mustPredict(bodyB)

	// Play out the rest of the stream: the post-shift regime is stationary,
	// so no further regime change may be confirmed.
	for i := next; i < len(scen.Series); i++ {
		feed(i)
	}
	res.stats = s.RegistryStats()
	return res
}

// TestDriftE2ERefitLoopDeterministic is the end-to-end acceptance test for
// the drift loop: a seeded abrupt regime change streamed through
// /v1/observe is detected within the configured window and triggers
// exactly one background refit for the drifted key; the stale model serves
// byte-identically (zero non-200s) while the refit is in flight; the
// unaffected key's responses never change; and two same-seed runs of the
// whole loop produce byte-identical post-refit predictions.
func TestDriftE2ERefitLoopDeterministic(t *testing.T) {
	run1 := runDriftScenario(t)

	if run1.eventsSeen != 1 || run1.refitsSeen != 1 {
		t.Errorf("drift responses = %d events / %d refits, want exactly 1 / 1",
			run1.eventsSeen, run1.refitsSeen)
	}
	if run1.stats.Fits != 2 {
		t.Errorf("fits = %d, want 2 (the two warmups; the refit must not count as a fit)", run1.stats.Fits)
	}
	if run1.stats.Refits != 1 || run1.stats.RefitErrors != 0 {
		t.Errorf("refits = %d (errors %d), want exactly 1 clean refit",
			run1.stats.Refits, run1.stats.RefitErrors)
	}

	// Stale model served during the refit; unaffected key never moves.
	if string(run1.midB) != string(run1.preB) {
		t.Error("drifted key's response changed while the refit was still in flight")
	}
	if string(run1.midA) != string(run1.preA) || string(run1.postA) != string(run1.preA) {
		t.Error("unaffected key's responses changed across the drift loop")
	}
	// The refit genuinely swapped models: predictions move once it lands.
	if string(run1.postB) == string(run1.preB) {
		t.Error("drifted key's response unchanged after the refit swapped in the new suite")
	}

	// Same seed, same loop: every captured response is byte-identical.
	run2 := runDriftScenario(t)
	for _, c := range []struct {
		name   string
		a, b   []byte
	}{
		{"pre/A", run1.preA, run2.preA},
		{"pre/B", run1.preB, run2.preB},
		{"post/A", run1.postA, run2.postA},
		{"post/B", run1.postB, run2.postB},
	} {
		if string(c.a) != string(c.b) {
			t.Errorf("%s responses differ between two same-seed runs:\n%s\n%s", c.name, c.a, c.b)
		}
	}
}

// TestDriftStateSurvivesRestart pins the warm-restart contract for the
// drift layer: observation windows persisted on drain are restored by the
// next life, and the restored tracker's forecast matches the one the
// previous life would have produced.
func TestDriftStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	k := Key{Selection: testSelection, Metric: testMetric, Model: testModel}

	s1 := newTestServer(t, Config{SnapshotDir: dir})
	ts := httptest.NewServer(s1.Handler())
	scen, err := bench.GenerateDemand(bench.DriftNone, 48, telemetry.NewSource(7).Child("serve/restart"))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range scen.Series {
		if code, body := post(t, ts.URL+"/v1/observe", observeBody(t, k, int64(i), v, scen.Level)); code != 200 {
			t.Fatalf("observe: status = %d, body %s", code, body)
		}
	}
	ts.Close()
	want := s1.DriftForecast(k, 8)
	if want == nil {
		t.Fatal("no forecast from a tracked key")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, driftStateFile)); err != nil {
		t.Fatalf("drift state not persisted on drain: %v", err)
	}

	s2 := newTestServer(t, Config{SnapshotDir: dir})
	if _, _, err := s2.RestoreSnapshots(); err != nil {
		t.Fatal(err)
	}
	keys, observations, _, _ := s2.tracker.Stats()
	if keys != 1 || observations != len(scen.Series) {
		t.Fatalf("restored tracker stats = (%d keys, %d obs), want (1, %d)", keys, observations, len(scen.Series))
	}
	got := s2.DriftForecast(k, 8)
	if got == nil {
		t.Fatal("restored tracker lost the key")
	}
	if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
		t.Errorf("restored forecast diverged:\n got %v\nwant %v", got, want)
	}

	// A corrupt state file degrades to a cold tracker, never a failed start.
	if err := os.WriteFile(filepath.Join(dir, driftStateFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newTestServer(t, Config{SnapshotDir: dir})
	if _, _, err := s3.RestoreSnapshots(); err != nil {
		t.Fatal(err)
	}
	if keys, _, _, _ := s3.tracker.Stats(); keys != 0 {
		t.Errorf("corrupt drift state restored %d keys, want cold start", keys)
	}
}

// TestHealthCarriesDriftStatus asserts the health payload exposes the
// drift section with live counters.
func TestHealthCarriesDriftStatus(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	k := Key{Selection: testSelection, Metric: testMetric, Model: testModel}
	if code, _ := post(t, ts.URL+"/v1/observe", observeBody(t, k, 0, 100, 100)); code != 200 {
		t.Fatal("observe failed")
	}
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz: status = %d", code)
	}
	var payload struct {
		Drift *driftStatusJSON `json:"drift"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Drift == nil {
		t.Fatal("healthz payload has no drift section")
	}
	if payload.Drift.Keys != 1 || payload.Drift.Observations != 1 {
		t.Errorf("drift status = %+v, want 1 key / 1 observation", payload.Drift)
	}
}
