package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testKey is the cheap registry key the durability tests train.
func cheapKey() Key {
	return Key{Selection: testSelection, Metric: testMetric, Model: testModel}
}

// TestSnapshotRestartRoundTrip is the acceptance test for durable warm
// restart: predictions served after a snapshot + full server restart are
// byte-identical to the pre-restart responses, with zero refits on the
// restarted instance (pinned via the registry fit counter).
func TestSnapshotRestartRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	body := predictBody(t, 4)

	// First life: fit, serve, drain (persists snapshots).
	s1 := newTestServer(t, Config{SnapshotDir: dir})
	if restored, _, err := s1.RestoreSnapshots(); err != nil || restored != 0 {
		t.Fatalf("first start restored %d snapshots (err %v), want 0", restored, err)
	}
	if err := s1.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, before := post(t, ts1.URL+"/v1/predict", body)
	ts1.Close()
	if code != 200 {
		t.Fatalf("pre-restart predict: status %d: %s", code, before)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := s1.RegistryStats(); st.Fits != 1 {
		t.Fatalf("first life fits = %d, want 1", st.Fits)
	}

	// Second life: same configuration, same directory.
	s2 := newTestServer(t, Config{SnapshotDir: dir})
	restored, skipped, err := s2.RestoreSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if restored < 1 || skipped != 0 {
		t.Fatalf("restart restored %d / skipped %d, want >=1 / 0", restored, skipped)
	}
	if err := s2.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, after := post(t, ts2.URL+"/v1/predict", body)
	if code != 200 {
		t.Fatalf("post-restart predict: status %d: %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("post-restart response differs from pre-restart:\n%s\nvs\n%s", before, after)
	}
	st := s2.RegistryStats()
	if st.Fits != 0 {
		t.Errorf("restarted server trained %d pipelines, want 0 (warm restore)", st.Fits)
	}
	if st.Restores == 0 {
		t.Error("restarted server recorded no restores")
	}
}

// TestSnapshotLazyRestoreOnMiss covers the fleet path: a second server
// sharing the snapshot directory — never warmed, never restarted — must
// satisfy a cold miss from the sibling's snapshot instead of refitting.
func TestSnapshotLazyRestoreOnMiss(t *testing.T) {
	dir := t.TempDir()
	body := predictBody(t, 4)

	s1 := newTestServer(t, Config{SnapshotDir: dir})
	if err := s1.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	_, before := post(t, ts1.URL+"/v1/predict", body)
	ts1.Close()

	// The sibling starts cold and is not told to restore; the lazy hook
	// must still find the sibling's fit on the first miss.
	s2 := newTestServer(t, Config{SnapshotDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	code, after := post(t, ts2.URL+"/v1/predict", body)
	if code != 200 {
		t.Fatalf("sibling predict: status %d: %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("sibling response differs:\n%s\nvs\n%s", before, after)
	}
	if st := s2.RegistryStats(); st.Fits != 0 || st.Restores != 1 {
		t.Errorf("sibling fits=%d restores=%d, want 0/1", st.Fits, st.Restores)
	}
}

// TestSnapshotStaleIsRefitted changes the server's seed between lives:
// the on-disk snapshot no longer matches the configuration and must be
// skipped — a stale model is worse than a refit.
func TestSnapshotStaleIsRefitted(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{SnapshotDir: dir, Seed: 42})
	if err := s1.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{SnapshotDir: dir, Seed: 43})
	restored, skipped, err := s2.RestoreSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped != 1 {
		t.Fatalf("stale snapshot: restored %d / skipped %d, want 0 / 1", restored, skipped)
	}
	if err := s2.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	if st := s2.RegistryStats(); st.Fits != 1 || st.Restores != 0 {
		t.Errorf("stale restart fits=%d restores=%d, want 1/0", st.Fits, st.Restores)
	}
}

// TestSnapshotCorruptFileNeverServes plants a truncated snapshot and
// asserts the server refits rather than serving garbage.
func TestSnapshotCorruptFileNeverServes(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{SnapshotDir: dir})
	if err := s1.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	// Truncate every snapshot file in place.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshot files written (err %v)", err)
	}
	for _, e := range entries {
		if err := os.Truncate(filepath.Join(dir, e.Name()), 40); err != nil {
			t.Fatal(err)
		}
	}

	s2 := newTestServer(t, Config{SnapshotDir: dir})
	restored, skipped, err := s2.RestoreSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 0 || skipped == 0 {
		t.Fatalf("corrupt snapshots: restored %d / skipped %d, want 0 / >0", restored, skipped)
	}
	if err := s2.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	if st := s2.RegistryStats(); st.Fits != 1 {
		t.Errorf("corrupt restart fits=%d, want 1 (refit)", st.Fits)
	}
}

// TestHealthPayloadsCarrySnapshotStatus asserts the probe endpoints let a
// router distinguish cold from warm instances: restore_pending flips once
// RestoreSnapshots runs, and writes/restores are visible.
func TestHealthPayloadsCarrySnapshotStatus(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{SnapshotDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var probe probeJSON
	_, body := get(t, ts.URL+"/readyz")
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Snapshots == nil || !probe.Snapshots.Enabled || !probe.Snapshots.RestorePending {
		t.Fatalf("pre-restore readyz payload: %s", body)
	}
	if probe.Status != "restoring snapshots" {
		t.Errorf("pre-restore status %q, want \"restoring snapshots\"", probe.Status)
	}

	if _, _, err := s.RestoreSnapshots(); err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(cheapKey()); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatal(err)
	}
	sn := probe.Snapshots
	if sn == nil || sn.RestorePending || sn.Written != 1 || sn.LastSnapshotUnix == 0 {
		t.Errorf("post-warmup healthz snapshot status: %s", body)
	}

	// Without a snapshot dir the section is omitted entirely.
	s2 := newTestServer(t, Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, body = get(t, ts2.URL+"/healthz")
	if bytes.Contains(body, []byte("snapshots")) {
		t.Errorf("healthz without durability mentions snapshots: %s", body)
	}
}

// TestRetryAfterJitter asserts 429 responses carry a jittered Retry-After
// in [1,3] (not the old constant 1), that the jitter is deterministic for
// a fixed seed, and that tests can inject their own source.
func TestRetryAfterJitter(t *testing.T) {
	a := newAdmission(1, 42)
	b := newAdmission(1, 42)
	var seqA, seqB []string
	for i := 0; i < 16; i++ {
		seqA = append(seqA, a.retryAfter())
		seqB = append(seqB, b.retryAfter())
	}
	if strings.Join(seqA, ",") != strings.Join(seqB, ",") {
		t.Errorf("same seed produced different jitter:\n%v\nvs\n%v", seqA, seqB)
	}
	distinct := map[string]bool{}
	for _, v := range seqA {
		distinct[v] = true
		if v != "1" && v != "2" && v != "3" {
			t.Errorf("Retry-After %q outside [1,3]", v)
		}
	}
	if len(distinct) < 2 {
		t.Errorf("no jitter: every Retry-After was %v", seqA)
	}
	c := newAdmission(1, 7)
	c.jitterHook = func() int { return 9 }
	if got := c.retryAfter(); got != "9" {
		t.Errorf("injected source ignored: got %q", got)
	}
}

// TestRejectedRequestCarriesJitteredRetryAfter exercises the jitter
// through the HTTP surface: a queue whose only slot is held in flight
// answers 429 with an injected deterministic Retry-After. (An oversize
// batch would be the wrong probe here — that is a permanent condition
// and answers 413 with no Retry-After at all.)
func TestRejectedRequestCarriesJitteredRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{QueueSlots: 1})
	s.adm.jitterHook = func() int { return 2 }
	admitted := make(chan struct{})
	unblock := make(chan struct{})
	var hookOnce sync.Once
	s.testHookAdmitted = func() {
		hookOnce.Do(func() {
			close(admitted)
			<-unblock
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := predictBody(t, 4)
	errc := make(chan error, 1)
	go func() {
		code, out := post(t, ts.URL+"/v1/predict", body)
		if code != http.StatusOK {
			errc <- fmt.Errorf("held request: status %d: %s", code, out)
			return
		}
		errc <- nil
	}()
	<-admitted // the queue's single slot is held in flight

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want injected \"2\"", got)
	}

	close(unblock)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
