package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wpred/internal/core"
)

// fakeTrainer fits instantly-recognizable pipelines: it records which key
// each returned pipeline was trained for, so Get results can be checked
// for cross-key mixups, and counts fits per key.
type fakeTrainer struct {
	mu      sync.Mutex
	perKey  map[Key]int
	byPipe  map[*core.Pipeline]Key
	delay   time.Duration
	failKey Key
	failLim int32 // how many times failKey fails before succeeding
	fails   atomic.Int32
}

func newFakeTrainer(delay time.Duration) *fakeTrainer {
	return &fakeTrainer{perKey: map[Key]int{}, byPipe: map[*core.Pipeline]Key{}, delay: delay}
}

func (f *fakeTrainer) train(k Key) (*core.Pipeline, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if k == f.failKey && f.fails.Add(1) <= f.failLim {
		return nil, errors.New("transient fit failure")
	}
	p := core.New(core.Config{})
	f.mu.Lock()
	f.perKey[k]++
	f.byPipe[p] = k
	f.mu.Unlock()
	return p, nil
}

func (f *fakeTrainer) keyOf(p *core.Pipeline) (Key, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k, ok := f.byPipe[p]
	return k, ok
}

func testKey(i int) Key {
	return Key{Selection: fmt.Sprintf("sel-%d", i), Metric: "m", Model: "mod"}
}

// TestRegistrySingleFlightUnderRace is the registry's concurrency
// contract, meant to run under -race: 64 goroutines hammer 8 distinct
// keys on a registry large enough to never evict, and the fit counter
// must equal the number of distinct keys — every concurrent miss on a
// cold key deduplicates into exactly one fit, and every Get returns the
// pipeline fitted for its own key.
func TestRegistrySingleFlightUnderRace(t *testing.T) {
	const (
		keys       = 8
		goroutines = 64
		iters      = 50
	)
	tr := newFakeTrainer(500 * time.Microsecond)
	r := NewRegistry(keys, tr.train)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := testKey((g + i) % keys)
				p, err := r.Get(k)
				if err != nil {
					errs[g] = err
					return
				}
				if got, ok := tr.keyOf(p); !ok || got != k {
					errs[g] = fmt.Errorf("Get(%v) returned pipeline trained for %v", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := r.Stats()
	if st.Fits != keys {
		t.Errorf("fits = %d, want exactly %d (one per distinct key under single-flight)", st.Fits, keys)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (capacity covers the key set)", st.Evictions)
	}
	if total := st.Hits + st.Misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iters)
	}
	if st.Misses != st.Fits {
		t.Errorf("misses = %d, fits = %d; every miss should fit exactly once", st.Misses, st.Fits)
	}
	if st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
}

// TestRegistryEvictionChurnUnderRace mixes hits, misses, and forced
// evictions (16 keys against 4 slots) across 32 goroutines. Exact fit
// counts are nondeterministic under eviction, but the books must still
// balance and no Get may ever observe a wrong or nil pipeline.
func TestRegistryEvictionChurnUnderRace(t *testing.T) {
	const (
		keys       = 16
		capacity   = 4
		goroutines = 32
		iters      = 40
	)
	tr := newFakeTrainer(200 * time.Microsecond)
	r := NewRegistry(capacity, tr.train)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Skewed access: half the traffic on two hot keys keeps
				// them resident while the cold tail churns the LRU.
				var k Key
				if i%2 == 0 {
					k = testKey(g % 2)
				} else {
					k = testKey((g * 7 ^ i * 13) % keys)
				}
				p, err := r.Get(k)
				if err != nil {
					errs[g] = err
					return
				}
				if p == nil {
					errs[g] = fmt.Errorf("Get(%v) returned nil pipeline without error", k)
					return
				}
				if got, ok := tr.keyOf(p); !ok || got != k {
					errs[g] = fmt.Errorf("Get(%v) returned pipeline trained for %v", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := r.Stats()
	if total := st.Hits + st.Misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iters)
	}
	if st.Fits != st.Misses {
		t.Errorf("fits = %d, misses = %d; every miss fits exactly once", st.Fits, st.Misses)
	}
	if st.Fits < keys {
		t.Errorf("fits = %d, want >= %d (every key trained at least once)", st.Fits, keys)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions with 16 keys against 4 slots")
	}
	if st.Entries > capacity {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, capacity)
	}
}

// TestRegistryFailedFitNotCached asserts the error semantics: callers
// racing on a failing flight all observe the failure, but the error is
// not cached — the next Get retries and can succeed.
func TestRegistryFailedFitNotCached(t *testing.T) {
	tr := newFakeTrainer(time.Millisecond)
	tr.failKey = testKey(0)
	tr.failLim = 1
	r := NewRegistry(4, tr.train)

	const racers = 8
	var wg sync.WaitGroup
	outcomes := make([]error, racers)
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, outcomes[g] = r.Get(testKey(0))
		}(g)
	}
	wg.Wait()

	// The first flight fails exactly once; any caller that raced into
	// that flight shares its error, later callers retry and succeed.
	var failed int
	for _, err := range outcomes {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no caller observed the transient failure")
	}

	p, err := r.Get(testKey(0))
	if err != nil || p == nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (only the successful fit cached)", st.Entries)
	}
}

// TestRegistryRefitCoalescesAndSwaps pins the background-refit semantics:
// concurrent Refit calls while a flight is up coalesce onto it, the old
// model serves until the flight completes, and the swap installs the
// freshly trained pipeline without counting as a fit.
func TestRegistryRefitCoalescesAndSwaps(t *testing.T) {
	gate := make(chan struct{})
	var trains atomic.Int32
	r := NewRegistry(4, func(k Key) (*core.Pipeline, error) {
		if trains.Add(1) > 1 {
			<-gate // refit trains block until released; the Get fit passes
		}
		return core.New(core.Config{}), nil
	})
	k := testKey(0)
	old, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}

	f1 := r.Refit(k)
	f2 := r.Refit(k)
	if f1 != f2 {
		t.Error("concurrent Refit calls did not coalesce onto one flight")
	}
	// The swap has not happened: Get still serves the old model.
	if p, _ := r.Get(k); p != old {
		t.Error("Get returned a different pipeline while the refit was in flight")
	}
	close(gate)
	if err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	p, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if p == old {
		t.Error("Get still returns the stale pipeline after the refit swapped")
	}
	st := r.Stats()
	if st.Fits != 1 || st.Refits != 1 || st.RefitErrors != 0 {
		t.Errorf("stats = fits %d / refits %d / refit errors %d, want 1 / 1 / 0",
			st.Fits, st.Refits, st.RefitErrors)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (swap must replace, not duplicate)", st.Entries)
	}
}

// TestRegistryRefitFailureServesStale asserts the no-cold-start-cliff
// contract: a failed refit leaves the previous model serving indefinitely
// and is visible only in the error counter.
func TestRegistryRefitFailureServesStale(t *testing.T) {
	var trains atomic.Int32
	r := NewRegistry(4, func(k Key) (*core.Pipeline, error) {
		if trains.Add(1) > 1 {
			return nil, errors.New("refit blew up")
		}
		return core.New(core.Config{}), nil
	})
	k := testKey(0)
	old, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refit(k).Wait(); err == nil {
		t.Fatal("refit flight reported success for a failed train")
	}
	p, err := r.Get(k)
	if err != nil || p != old {
		t.Errorf("Get after failed refit = (%p, %v), want the stale model (%p) with no error", p, err, old)
	}
	st := r.Stats()
	if st.Refits != 1 || st.RefitErrors != 1 {
		t.Errorf("refits = %d, refit errors = %d, want 1 and 1", st.Refits, st.RefitErrors)
	}
}

// TestRegistryRefitDuringRestoreUnderRace is the regression test for the
// warmup/lazy-restore/invalidation race: a drift invalidation landing
// while the key's lazy snapshot restore is still in flight must wait the
// restore out and train exactly once — never a double fit. Eight keys are
// held mid-restore while 64 goroutines hammer Get and Refit on all of
// them; after release, every key has trained exactly once (the refit),
// with zero Get-path fits.
func TestRegistryRefitDuringRestoreUnderRace(t *testing.T) {
	const (
		keys       = 8
		goroutines = 64
	)
	var (
		trainMu sync.Mutex
		trained = map[Key]int{}
	)
	r := NewRegistry(keys, func(k Key) (*core.Pipeline, error) {
		trainMu.Lock()
		trained[k]++
		trainMu.Unlock()
		return core.New(core.Config{}), nil
	})
	restoreGate := make(chan struct{})
	var restoresEntered sync.WaitGroup
	restoresEntered.Add(keys)
	r.SetRestore(func(k Key) (*core.Pipeline, bool) {
		restoresEntered.Done()
		<-restoreGate
		return core.New(core.Config{}), true
	})

	// Phase 1: one cold Get per key, each now parked inside the restore hook.
	var getters sync.WaitGroup
	getErrs := make([]error, keys)
	for i := 0; i < keys; i++ {
		getters.Add(1)
		go func(i int) {
			defer getters.Done()
			_, getErrs[i] = r.Get(testKey(i))
		}(i)
	}
	restoresEntered.Wait()

	// Phase 2: invalidations land mid-restore from 64 goroutines, mixed
	// with more Gets that pile onto the in-flight entries (those block
	// until release, so they join the getters wait group). Every Refit
	// call must coalesce per key, because no flight can finish before
	// release.
	var stress sync.WaitGroup
	flights := make([]*RefitFlight, goroutines*keys)
	for g := 0; g < goroutines; g++ {
		stress.Add(1)
		go func(g int) {
			defer stress.Done()
			for i := 0; i < keys; i++ {
				k := testKey((g + i) % keys)
				flights[g*keys+i] = r.Refit(k)
				if g%2 == 0 {
					getters.Add(1)
					go func(k Key) {
						defer getters.Done()
						_, _ = r.Get(k)
					}(k)
				}
			}
		}(g)
	}
	stress.Wait()
	close(restoreGate)
	getters.Wait()
	for i, err := range getErrs {
		if err != nil {
			t.Fatalf("Get(%v): %v", testKey(i), err)
		}
	}
	for _, f := range flights {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	trainMu.Lock()
	defer trainMu.Unlock()
	for i := 0; i < keys; i++ {
		if n := trained[testKey(i)]; n != 1 {
			t.Errorf("key %v trained %d times, want exactly 1 (the coalesced refit)", testKey(i), n)
		}
	}
	st := r.Stats()
	if st.Fits != 0 {
		t.Errorf("fits = %d, want 0 (every cold Get was satisfied by the restore)", st.Fits)
	}
	if st.Restores != keys {
		t.Errorf("restores = %d, want %d", st.Restores, keys)
	}
	if st.Refits != keys {
		t.Errorf("refits = %d, want %d (one coalesced flight per key)", st.Refits, keys)
	}
	if st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
}
