package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wpred/internal/core"
)

// fakeTrainer fits instantly-recognizable pipelines: it records which key
// each returned pipeline was trained for, so Get results can be checked
// for cross-key mixups, and counts fits per key.
type fakeTrainer struct {
	mu      sync.Mutex
	perKey  map[Key]int
	byPipe  map[*core.Pipeline]Key
	delay   time.Duration
	failKey Key
	failLim int32 // how many times failKey fails before succeeding
	fails   atomic.Int32
}

func newFakeTrainer(delay time.Duration) *fakeTrainer {
	return &fakeTrainer{perKey: map[Key]int{}, byPipe: map[*core.Pipeline]Key{}, delay: delay}
}

func (f *fakeTrainer) train(k Key) (*core.Pipeline, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if k == f.failKey && f.fails.Add(1) <= f.failLim {
		return nil, errors.New("transient fit failure")
	}
	p := core.New(core.Config{})
	f.mu.Lock()
	f.perKey[k]++
	f.byPipe[p] = k
	f.mu.Unlock()
	return p, nil
}

func (f *fakeTrainer) keyOf(p *core.Pipeline) (Key, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k, ok := f.byPipe[p]
	return k, ok
}

func testKey(i int) Key {
	return Key{Selection: fmt.Sprintf("sel-%d", i), Metric: "m", Model: "mod"}
}

// TestRegistrySingleFlightUnderRace is the registry's concurrency
// contract, meant to run under -race: 64 goroutines hammer 8 distinct
// keys on a registry large enough to never evict, and the fit counter
// must equal the number of distinct keys — every concurrent miss on a
// cold key deduplicates into exactly one fit, and every Get returns the
// pipeline fitted for its own key.
func TestRegistrySingleFlightUnderRace(t *testing.T) {
	const (
		keys       = 8
		goroutines = 64
		iters      = 50
	)
	tr := newFakeTrainer(500 * time.Microsecond)
	r := NewRegistry(keys, tr.train)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := testKey((g + i) % keys)
				p, err := r.Get(k)
				if err != nil {
					errs[g] = err
					return
				}
				if got, ok := tr.keyOf(p); !ok || got != k {
					errs[g] = fmt.Errorf("Get(%v) returned pipeline trained for %v", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := r.Stats()
	if st.Fits != keys {
		t.Errorf("fits = %d, want exactly %d (one per distinct key under single-flight)", st.Fits, keys)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (capacity covers the key set)", st.Evictions)
	}
	if total := st.Hits + st.Misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iters)
	}
	if st.Misses != st.Fits {
		t.Errorf("misses = %d, fits = %d; every miss should fit exactly once", st.Misses, st.Fits)
	}
	if st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
}

// TestRegistryEvictionChurnUnderRace mixes hits, misses, and forced
// evictions (16 keys against 4 slots) across 32 goroutines. Exact fit
// counts are nondeterministic under eviction, but the books must still
// balance and no Get may ever observe a wrong or nil pipeline.
func TestRegistryEvictionChurnUnderRace(t *testing.T) {
	const (
		keys       = 16
		capacity   = 4
		goroutines = 32
		iters      = 40
	)
	tr := newFakeTrainer(200 * time.Microsecond)
	r := NewRegistry(capacity, tr.train)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Skewed access: half the traffic on two hot keys keeps
				// them resident while the cold tail churns the LRU.
				var k Key
				if i%2 == 0 {
					k = testKey(g % 2)
				} else {
					k = testKey((g * 7 ^ i * 13) % keys)
				}
				p, err := r.Get(k)
				if err != nil {
					errs[g] = err
					return
				}
				if p == nil {
					errs[g] = fmt.Errorf("Get(%v) returned nil pipeline without error", k)
					return
				}
				if got, ok := tr.keyOf(p); !ok || got != k {
					errs[g] = fmt.Errorf("Get(%v) returned pipeline trained for %v", k, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := r.Stats()
	if total := st.Hits + st.Misses; total != goroutines*iters {
		t.Errorf("hits+misses = %d, want %d", total, goroutines*iters)
	}
	if st.Fits != st.Misses {
		t.Errorf("fits = %d, misses = %d; every miss fits exactly once", st.Fits, st.Misses)
	}
	if st.Fits < keys {
		t.Errorf("fits = %d, want >= %d (every key trained at least once)", st.Fits, keys)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions with 16 keys against 4 slots")
	}
	if st.Entries > capacity {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, capacity)
	}
}

// TestRegistryFailedFitNotCached asserts the error semantics: callers
// racing on a failing flight all observe the failure, but the error is
// not cached — the next Get retries and can succeed.
func TestRegistryFailedFitNotCached(t *testing.T) {
	tr := newFakeTrainer(time.Millisecond)
	tr.failKey = testKey(0)
	tr.failLim = 1
	r := NewRegistry(4, tr.train)

	const racers = 8
	var wg sync.WaitGroup
	outcomes := make([]error, racers)
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, outcomes[g] = r.Get(testKey(0))
		}(g)
	}
	wg.Wait()

	// The first flight fails exactly once; any caller that raced into
	// that flight shares its error, later callers retry and succeed.
	var failed int
	for _, err := range outcomes {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no caller observed the transient failure")
	}

	p, err := r.Get(testKey(0))
	if err != nil || p == nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (only the successful fit cached)", st.Entries)
	}
}
