// The /v1/observe feedback loop: callers report what a served prediction
// said and what the workload actually did, the streaming drift layer
// (internal/drift) watches the residual stream per registry key, and a
// confirmed non-cyclic regime change invalidates the key — a background
// single-flight refit through Registry.Refit, with the old model serving
// until the new one is ready. See "Drift & forecasting" in DESIGN.md.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"wpred/internal/drift"
	"wpred/internal/obs"
)

// Drift metrics. Counters cover the feedback loop end to end: samples in,
// regime changes confirmed, refits actually triggered (cyclic events are
// classified, reported, and deliberately not refit).
var (
	driftObsTotal = obs.GetCounter("wpred_drift_observations_total",
		"Feedback observations ingested via /v1/observe.", nil)
	driftEventsTotal = obs.GetCounter("wpred_drift_events_total",
		"Regime changes confirmed by the streaming drift detector.", nil)
	driftRefitsTotal = obs.GetCounter("wpred_drift_refits_total",
		"Registry refits triggered by confirmed non-cyclic drift events.", nil)
	driftDelayObs = obs.GetHistogram("wpred_drift_detection_delay_observations",
		"Confirmation delay of drift events, in observations past the estimated onset.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128}, nil)
)

// driftStateFile is the tracker's persistence file inside the snapshot
// directory, saved on drain next to the model snapshots so a warm restart
// does not forget the per-key observation windows.
const driftStateFile = "drift_state.json"

// observeRequest is the wire form of one feedback observation: the model
// key the prediction came from (defaults applied like /v1/predict), a
// caller-supplied logical tick, and the predicted vs observed resource
// value.
type observeRequest struct {
	Selection string  `json:"selection,omitempty"`
	Metric    string  `json:"metric,omitempty"`
	Model     string  `json:"model,omitempty"`
	Tick      int64   `json:"tick"`
	Observed  float64 `json:"observed"`
	Predicted float64 `json:"predicted"`
}

// observeResponse is the wire form of the feedback answer. Status is "ok"
// for an uneventful sample and "drift" when this observation confirmed a
// regime change; refit reports whether the key was invalidated (cyclic
// changes are reported but never refit).
type observeResponse struct {
	Status     string `json:"status"`
	Kind       string `json:"kind,omitempty"`
	OnsetIndex int    `json:"onset_index,omitempty"`
	DelayObs   int    `json:"delay_obs,omitempty"`
	Refit      bool   `json:"refit,omitempty"`
}

// decodeObserveRequest decodes and validates one feedback observation.
func decodeObserveRequest(r io.Reader) (Key, drift.Observation, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw observeRequest
	if err := dec.Decode(&raw); err != nil {
		return Key{}, drift.Observation{}, decodeErr(err)
	}
	if dec.More() {
		return Key{}, drift.Observation{}, errors.New("serve: trailing data after observation object")
	}
	key, err := validateKey(raw.Selection, raw.Metric, raw.Model)
	if err != nil {
		return Key{}, drift.Observation{}, err
	}
	if !finite(raw.Observed) || !finite(raw.Predicted) {
		return Key{}, drift.Observation{}, errors.New("serve: observed and predicted must be finite")
	}
	return key, drift.Observation{Tick: raw.Tick, Observed: raw.Observed, Predicted: raw.Predicted}, nil
}

// handleObserve ingests one feedback observation. The response reports
// synchronously whether this sample confirmed a regime change; the refit
// it may trigger runs in the background (single-flight per key) while the
// resident model keeps serving, so there is no cold-start cliff and no
// 5xx window during the swap.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	key, o, err := decodeObserveRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		decodeFailure(w, err)
		return
	}
	driftObsTotal.Inc()
	ev, ok := s.tracker.Observe(key.String(), o)
	if !ok {
		writeJSON(w, http.StatusOK, observeResponse{Status: "ok"})
		return
	}
	s.driftEvents.Add(1)
	driftEventsTotal.Inc()
	driftDelayObs.Observe(float64(ev.DelayObs))
	resp := observeResponse{
		Status:     "drift",
		Kind:       string(ev.Kind),
		OnsetIndex: ev.OnsetIndex,
		DelayObs:   ev.DelayObs,
	}
	if ev.Kind != drift.Cyclic {
		resp.Refit = true
		s.driftRefits.Add(1)
		driftRefitsTotal.Inc()
		flight := s.registry.Refit(key)
		go func() {
			err := flight.Wait()
			if s.testHookRefitDone != nil {
				s.testHookRefitDone(key, err)
			}
		}()
	}
	writeJSON(w, http.StatusOK, resp)
}

// DriftForecast returns the near-future demand forecast for a key's
// observed stream (nil when the key has no feedback yet) — the daemon's
// capacity-planning hook.
func (s *Server) DriftForecast(k Key, horizon int) *drift.Forecast {
	return s.tracker.Forecast(k.withDefaults().String(), horizon)
}

// driftStatePath returns the tracker persistence path, or "" when
// durability is disabled.
func (s *Server) driftStatePath() string {
	if s.snaps == nil || s.snaps.store == nil {
		return ""
	}
	return filepath.Join(s.snaps.store.Dir(), driftStateFile)
}

// persistDriftState saves the tracker windows next to the model
// snapshots: write to a temp file, fsync, rename — the same atomicity
// contract as the snapshot store, so a crash mid-write leaves the
// previous state intact.
func (s *Server) persistDriftState() error {
	path := s.driftStatePath()
	if path == "" {
		return nil
	}
	raw, err := json.Marshal(s.tracker.State())
	if err != nil {
		return fmt.Errorf("serve: drift state: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("serve: drift state: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), driftStateFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: drift state: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: drift state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: drift state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: drift state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: drift state: %w", err)
	}
	return nil
}

// restoreDriftState reloads the tracker windows persisted by a previous
// life, returning how many key monitors were restored. A missing file is
// a cold start, not an error; a corrupt file is ignored (the tracker
// simply starts cold) rather than blocking the restart.
func (s *Server) restoreDriftState() int {
	path := s.driftStatePath()
	if path == "" {
		return 0
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var st drift.TrackerState
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0
	}
	return s.tracker.LoadState(st)
}

// driftStatusJSON is the drift section of the health payloads.
type driftStatusJSON struct {
	Keys         int    `json:"keys"`
	Observations int    `json:"observations"`
	Events       uint64 `json:"events"`
	Refits       uint64 `json:"refits"`
}

// driftStatus renders the health-payload drift section.
func (s *Server) driftStatus() *driftStatusJSON {
	keys, observations, _, _ := s.tracker.Stats()
	return &driftStatusJSON{
		Keys:         keys,
		Observations: observations,
		Events:       s.driftEvents.Load(),
		Refits:       s.driftRefits.Load(),
	}
}
