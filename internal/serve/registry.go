package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"wpred/internal/core"
	"wpred/internal/obs"
)

// Registry metrics (see "Serving layer" in DESIGN.md). The per-instance
// atomic counters back the tests and the Stats accessor; the obs series
// expose the same traffic on /metrics.
var (
	regFits = obs.GetCounter("wpred_serve_registry_fits_total",
		"Pipelines trained into the model registry (one per distinct key under single-flight).", nil)
	regHits = obs.GetCounter("wpred_serve_registry_hits_total",
		"Registry lookups served by an existing entry.", nil)
	regMisses = obs.GetCounter("wpred_serve_registry_misses_total",
		"Registry lookups that had to train a pipeline.", nil)
	regEvictions = obs.GetCounter("wpred_serve_registry_evictions_total",
		"Entries displaced by the LRU bound.", nil)
	regEntries = obs.GetGauge("wpred_serve_registry_entries",
		"Entries currently resident in the model registry.", nil)
	regRestores = obs.GetCounter("wpred_serve_registry_restores_total",
		"Entries restored from snapshots instead of being trained (warm restarts plus lazy per-key restores).", nil)
	regFitSeconds = obs.GetHistogram("wpred_serve_registry_fit_seconds",
		"Cold-miss pipeline training latency (the tail every waiter on the single-flight shares).",
		obs.DefBuckets, nil)
	regRefits = obs.GetCounter("wpred_serve_registry_refits_total",
		"Background refits triggered by drift invalidation (one per coalesced invalidation burst).", nil)
	regRefitErrs = obs.GetCounter("wpred_serve_registry_refit_errors_total",
		"Background refits that failed; the previous model keeps serving.", nil)
)

// Key identifies one trained pipeline in the model registry: the
// feature-selection strategy × similarity measure × scaling-model family,
// by their display names.
type Key struct {
	Selection string
	Metric    string
	Model     string
}

// withDefaults fills empty fields with the paper's recommended
// configuration, so "{}" and the fully spelled-out default request share
// one registry entry.
func (k Key) withDefaults() Key {
	if k.Selection == "" {
		k.Selection = DefaultSelection
	}
	if k.Metric == "" {
		k.Metric = DefaultMetric
	}
	if k.Model == "" {
		k.Model = DefaultModel
	}
	return k
}

// String renders the key for logs and error messages.
func (k Key) String() string { return k.Selection + " × " + k.Metric + " × " + k.Model }

// regEntry is one registry slot. done closes when the fit finishes;
// waiters then read p/err without further synchronization.
type regEntry struct {
	key  Key
	elem *list.Element
	done chan struct{}
	p    *core.Pipeline
	err  error
}

// Registry is the LRU-bounded, single-flight model cache: Get returns the
// trained pipeline for a key, training it at most once no matter how many
// requests race on a cold key. Eviction displaces the least-recently-used
// entry; a displaced in-flight fit still completes and serves its waiting
// callers, it just isn't retained. Failed fits are not cached, so a
// transient training error does not poison the key forever — but every
// caller waiting on the failed flight observes the same error.
type Registry struct {
	train func(Key) (*core.Pipeline, error)
	// restore, when set (SetRestore), is consulted on a cold key before
	// train: a hit counts as a restore rather than a fit. The snapshot
	// layer uses it so a key another fleet member already trained — or
	// that this process trained before a restart — is loaded from disk
	// instead of refitted.
	restore func(Key) (*core.Pipeline, bool)
	cap     int

	mu      sync.Mutex
	entries map[Key]*regEntry
	lru     *list.List // front = most recently used; values are *regEntry
	// refitting coalesces concurrent drift invalidations per key: every
	// Refit call while a flight is up joins it instead of training again.
	refitting map[Key]*RefitFlight

	fits, hits, misses, evictions, restores, refits, refitErrs atomic.Uint64
}

// NewRegistry returns a registry holding at most capacity trained
// pipelines (minimum 1), fitting misses through train.
func NewRegistry(capacity int, train func(Key) (*core.Pipeline, error)) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{
		train:     train,
		cap:       capacity,
		entries:   map[Key]*regEntry{},
		lru:       list.New(),
		refitting: map[Key]*RefitFlight{},
	}
}

// RegistryStats is a consistent snapshot of the registry counters.
type RegistryStats struct {
	// Fits counts pipelines trained (single-flight: one per distinct cold
	// key while no eviction intervenes). Keys satisfied from snapshots
	// never count here — the restart round-trip test pins that.
	Fits uint64
	// Hits and Misses partition every Get call.
	Hits, Misses uint64
	// Evictions counts entries displaced by the LRU bound.
	Evictions uint64
	// Restores counts entries satisfied from snapshots (startup warm
	// restores plus lazy per-key restores on cold misses).
	Restores uint64
	// Refits counts background drift-invalidation refits that ran (every
	// coalesced invalidation burst counts once; failed refits included).
	Refits uint64
	// RefitErrors counts refits that failed, leaving the old model serving.
	RefitErrors uint64
	// Entries is the current resident count.
	Entries int
}

// Stats returns the registry's lifetime counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	n := r.lru.Len()
	r.mu.Unlock()
	return RegistryStats{
		Fits:        r.fits.Load(),
		Hits:        r.hits.Load(),
		Misses:      r.misses.Load(),
		Evictions:   r.evictions.Load(),
		Restores:    r.restores.Load(),
		Refits:      r.refits.Load(),
		RefitErrors: r.refitErrs.Load(),
		Entries:     n,
	}
}

// SetRestore installs the snapshot-restore hook consulted on cold misses.
// Call it before the registry starts serving Gets; the hook must be safe
// for concurrent use.
func (r *Registry) SetRestore(f func(Key) (*core.Pipeline, bool)) { r.restore = f }

// Put warm-inserts an already trained pipeline (the startup restore path),
// counting it as a restore. An existing or in-flight entry for the key is
// left untouched — a restore never clobbers newer work — and the insert
// respects the LRU bound like any fit.
func (r *Registry) Put(key Key, p *core.Pipeline) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[key]; ok {
		return
	}
	e := &regEntry{key: key, done: make(chan struct{}), p: p}
	close(e.done)
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.restores.Add(1)
	regRestores.Inc()
	r.evictOverflow()
	regEntries.Set(float64(r.lru.Len()))
}

// Resident returns the successfully trained pipelines currently resident,
// skipping in-flight and failed entries. The shutdown path persists these
// so the next start restores every warm model, not just the ones whose
// on-fit snapshot write succeeded.
func (r *Registry) Resident() map[Key]*core.Pipeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Key]*core.Pipeline, len(r.entries))
	for k, e := range r.entries {
		select {
		case <-e.done:
			if e.err == nil && e.p != nil {
				out[k] = e.p
			}
		default: // fit still in flight
		}
	}
	return out
}

// evictOverflow displaces LRU entries beyond the capacity. Caller holds mu.
func (r *Registry) evictOverflow() {
	for r.lru.Len() > r.cap {
		back := r.lru.Back()
		victim := back.Value.(*regEntry)
		r.lru.Remove(back)
		delete(r.entries, victim.key)
		r.evictions.Add(1)
		regEvictions.Inc()
	}
}

// Get returns the trained pipeline for key, fitting it if absent. Blocks
// while another goroutine fits the same key and shares that flight's
// result. Keys must already be validated (withDefaults applied).
func (r *Registry) Get(key Key) (*core.Pipeline, error) {
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.lru.MoveToFront(e.elem)
		r.hits.Add(1)
		regHits.Inc()
		r.mu.Unlock()
		<-e.done
		return e.p, e.err
	}
	e := &regEntry{key: key, done: make(chan struct{})}
	e.elem = r.lru.PushFront(e)
	r.entries[key] = e
	r.misses.Add(1)
	regMisses.Inc()
	r.evictOverflow()
	regEntries.Set(float64(r.lru.Len()))
	r.mu.Unlock()

	// Snapshot restore first (when enabled): a key another fleet member
	// already trained — or this process trained before a restart — loads
	// from disk instead of refitting. Waiters on the flight can't tell
	// the difference; only the fit/restore accounting does.
	if r.restore != nil {
		if p, ok := r.restore(key); ok {
			r.restores.Add(1)
			regRestores.Inc()
			e.p = p
			close(e.done)
			return e.p, nil
		}
	}
	r.fits.Add(1)
	regFits.Inc()
	t0 := time.Now()
	e.p, e.err = r.train(key)
	regFitSeconds.Observe(time.Since(t0).Seconds())
	close(e.done)
	if e.err != nil {
		r.mu.Lock()
		// Drop the failed entry unless eviction already removed it (or a
		// successor replaced it after an eviction).
		if cur, ok := r.entries[key]; ok && cur == e {
			r.lru.Remove(e.elem)
			delete(r.entries, key)
		}
		regEntries.Set(float64(r.lru.Len()))
		r.mu.Unlock()
	}
	return e.p, e.err
}

// RefitFlight is one in-flight background refit. Every invalidation that
// coalesced onto the flight shares the same completion signal and error.
type RefitFlight struct {
	done chan struct{}
	err  error
}

// Wait blocks until the refit completes and returns its error (nil when
// the new model is serving).
func (f *RefitFlight) Wait() error {
	<-f.done
	return f.err
}

// Refit retrains key in the background — the drift-invalidation path. It
// is single-flight twice over: concurrent Refit calls for the same key
// coalesce onto one flight, and the flight first waits out any in-flight
// Get fit or lazy snapshot restore for the key before training, so an
// invalidation landing mid-restore can never race a second fit of the
// same key. Training bypasses the snapshot-restore hook — a refit exists
// precisely because the persisted model is suspect — and the old entry
// keeps serving until the new model is ready (and indefinitely when the
// refit fails), so there is no cold-start cliff. The returned flight
// resolves when the swap (or failure) has happened.
func (r *Registry) Refit(key Key) *RefitFlight {
	r.mu.Lock()
	if f, ok := r.refitting[key]; ok {
		r.mu.Unlock()
		return f
	}
	f := &RefitFlight{done: make(chan struct{})}
	r.refitting[key] = f
	cur := r.entries[key]
	r.mu.Unlock()

	go func() {
		if cur != nil {
			<-cur.done // never train concurrently with the key's own flight
		}
		r.refits.Add(1)
		regRefits.Inc()
		t0 := time.Now()
		p, err := r.train(key)
		regFitSeconds.Observe(time.Since(t0).Seconds())

		r.mu.Lock()
		delete(r.refitting, key)
		if err != nil {
			r.refitErrs.Add(1)
			regRefitErrs.Inc()
		} else {
			// Swap in a fresh, already-done entry. The old entry is never
			// mutated: Get callers that already hold it finish against the
			// stale-but-consistent model.
			e := &regEntry{key: key, done: make(chan struct{}), p: p}
			close(e.done)
			if old, ok := r.entries[key]; ok {
				e.elem = old.elem
				e.elem.Value = e
				r.entries[key] = e
				r.lru.MoveToFront(e.elem)
			} else {
				e.elem = r.lru.PushFront(e)
				r.entries[key] = e
				r.evictOverflow()
			}
			regEntries.Set(float64(r.lru.Len()))
		}
		r.mu.Unlock()
		f.err = err
		close(f.done)
	}()
	return f
}
