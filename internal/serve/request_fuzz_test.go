package serve

import (
	"strings"
	"testing"

	"wpred/internal/scalemodel"
)

// FuzzDecodePredictRequest asserts the /v1/predict decoder is total:
// arbitrary bytes either produce a fully validated request or an error —
// never a panic — and every accepted request satisfies the documented
// invariants (resolvable key, in-range SKU, bounded non-empty target
// list, finite scalars). Seeds live in testdata/fuzz alongside the
// telemetry decoder's corpus.
func FuzzDecodePredictRequest(f *testing.F) {
	valid := string(fuzzValidRequest(f))
	f.Add(valid)
	f.Add(strings.Replace(valid, ":", ",", 5)) // mangled syntax
	f.Add(valid + valid)                       // trailing data
	f.Add(valid[:len(valid)/2])                // truncated
	f.Add("")
	f.Add("null")
	f.Add("{}")
	f.Add(`{"to_sku":{"cpus":4}}`)                                      // no targets
	f.Add(`{"to_sku":{"cpus":0},"target":[{}]}`)                        // zero CPUs
	f.Add(`{"to_sku":{"cpus":1000000},"target":[{}]}`)                  // absurd SKU
	f.Add(`{"to_sku":{"cpus":4,"memory_gb":-1},"target":[{}]}`)         // negative memory
	f.Add(`{"to_sku":{"cpus":4},"target":[{"throughput":1e999}]}`)      // ±Inf literal
	f.Add(`{"to_sku":{"cpus":4},"target":[{"throughput":"NaN"}]}`)      // NaN as string
	f.Add(`{"selection":"Oracle","to_sku":{"cpus":4},"target":[{}]}`)   // unknown selection
	f.Add(`{"metric":"L9,9","to_sku":{"cpus":4},"target":[{}]}`)        // unknown metric
	f.Add(`{"model":"Magic","to_sku":{"cpus":4},"target":[{}]}`)        // unknown model
	f.Add(`{"bogus":true,"to_sku":{"cpus":4},"target":[{}]}`)           // unknown field
	f.Add(`{"to_sku":{"cpus":4},"target":[` + strings.Repeat("{},", 70) + `{}]}`) // too many targets
	f.Add(`{"to_sku":{"cpus":4},"target":[{"resources":{"bogus":[1]}}]}`)         // unknown feature
	f.Add(strings.Repeat(`[`, 200))
	f.Add(strings.Repeat(`{"target":`, 50))

	f.Fuzz(func(t *testing.T, data string) {
		req, err := decodePredictRequest(strings.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			return
		}
		if _, ok := selectionByName(req.Key.Selection, 0); !ok {
			t.Fatalf("accepted unknown selection %q", req.Key.Selection)
		}
		if _, ok := metricByName(req.Key.Metric); !ok {
			t.Fatalf("accepted unknown metric %q", req.Key.Metric)
		}
		if _, ok := scalemodel.StrategyByName(req.Key.Model); !ok {
			t.Fatalf("accepted unknown model %q", req.Key.Model)
		}
		if req.ToSKU.CPUs < 1 || req.ToSKU.CPUs > maxSKUCPUs {
			t.Fatalf("accepted out-of-range to_sku.cpus %d", req.ToSKU.CPUs)
		}
		if req.ToSKU.MemoryGB < 1 {
			t.Fatalf("accepted non-positive memory %d", req.ToSKU.MemoryGB)
		}
		if len(req.Target) == 0 || len(req.Target) > MaxTargetsPerItem {
			t.Fatalf("accepted %d targets", len(req.Target))
		}
		for i, e := range req.Target {
			if e == nil {
				t.Fatalf("accepted nil target %d", i)
			}
			if !finite(e.Throughput) || !finite(e.MeanLatMS) {
				t.Fatalf("accepted non-finite scalars in target %d", i)
			}
		}
	})
}

// fuzzValidRequest builds a well-formed request body without dragging the
// simulator into the fuzz harness: a minimal plan-only experiment.
func fuzzValidRequest(f *testing.F) []byte {
	f.Helper()
	return []byte(`{
  "selection": "Variance",
  "metric": "L2,1",
  "model": "Regression",
  "to_sku": {"cpus": 8, "memory_gb": 64},
  "target": [
    {"workload": "W", "cpus": 2, "memory_gb": 16, "terminals": 4, "run": 1, "throughput": 100.5, "mean_latency_ms": 9.5}
  ]
}`)
}
