module wpred

go 1.24
