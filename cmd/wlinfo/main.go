// Command wlinfo inspects a benchmark workload definition: its Table-1
// profile (schema counts, transaction mix, read-only share), the simulated
// optimizer's plan for each transaction template (EXPLAIN-style), and the
// modeled steady state across the standard SKUs.
//
// Usage:
//
//	wlinfo -workload TPC-C
//	wlinfo -workload TPC-H -plans -terminals 1
package main

import (
	"flag"
	"fmt"
	"os"

	"wpred"
	"wpred/internal/simdb"
	"wpred/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "TPC-C", "workload to inspect")
		plans     = flag.Bool("plans", false, "print an EXPLAIN-style plan per transaction template")
		terminals = flag.Int("terminals", 8, "concurrency for the steady-state table")
		maxPlans  = flag.Int("maxplans", 10, "limit on printed plans (TPC-DS has 99, PW 520)")
	)
	flag.Parse()

	w, err := wpred.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlinfo:", err)
		os.Exit(2)
	}

	fmt.Printf("%s — %v workload\n", w.Name, w.Class)
	fmt.Printf("  tables: %d   columns: %d   indexes: %d   database: %.1f GiB\n",
		w.Catalog.NumTables(), w.Catalog.NumColumns(), w.Catalog.NumIndexes(), w.DBSizeGB())
	fmt.Printf("  transaction types: %d   read-only share: %.1f%%\n",
		len(w.Txns), 100*w.ReadOnlyFraction())
	if w.PlanOnly {
		fmt.Println("  telemetry: plan features only (no resource tracking)")
	}

	fmt.Println("\ntransaction mix:")
	total := 0.0
	for _, t := range w.Txns {
		total += t.Weight
	}
	shown := 0
	for _, t := range w.Txns {
		if shown >= *maxPlans {
			fmt.Printf("  … and %d more templates\n", len(w.Txns)-shown)
			break
		}
		kind := "read-only"
		if !t.Query.IsReadOnly() {
			kind = "write"
		}
		fmt.Printf("  %-28s %5.1f%%  %s  cpu=%.2fms io=%.1f locks=%.1f\n",
			t.Query.Name, 100*t.Weight/total, kind, t.CPUms, t.IOops, t.LockReqs)
		shown++
	}

	if *plans {
		fmt.Println("\nquery plans:")
		shown = 0
		for _, t := range w.Txns {
			if shown >= *maxPlans {
				break
			}
			fmt.Printf("\n-- %s\n%s", t.Query.Name, simdb.ExplainQuery(t.Query, w.Catalog))
			shown++
		}
	}

	fmt.Printf("\nmodeled steady state (%d terminals):\n", *terminals)
	fmt.Printf("  %-12s %12s %12s %8s %8s %10s\n", "SKU", "throughput", "latency", "cpu%", "mem%", "iops")
	for _, sku := range telemetry.DefaultSKUs() {
		terms := *terminals
		ss := simdb.ComputeSteadyState(w, sku, terms)
		fmt.Printf("  %-12s %9.1f/s %10.2fms %7.1f%% %7.1f%% %10.1f\n",
			sku, ss.Throughput, ss.MeanLatMS, ss.CPUUtil, ss.MemUtil, ss.IOPS)
	}
}
