//go:build race

package main

// raceEnabled reports whether this binary was built with the race
// detector; the golden-file comparison skips under it because a full
// quick-suite run exceeds the race-detector time budget (see
// TestRunAllGolden).
const raceEnabled = true
