package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wpred/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden file from the current -run all -quick output")

const goldenPath = "testdata/run_all_quick.golden"

// TestRunAllGolden pins the complete `experiments -run all -quick` stdout
// against a committed golden file, with the wall-clock timing columns
// masked. Any change to a table's numbers, layout, ordering, or headers —
// however it sneaks in — shows up as a diff here instead of silently
// shifting EXPERIMENTS.md. Regenerate deliberately with:
//
//	go test ./cmd/experiments -run TestRunAllGolden -update
func TestRunAllGolden(t *testing.T) {
	if raceEnabled {
		t.Skip("a full quick-suite run exceeds the race-detector time budget; TestRunAllDeterministicAcrossWorkers covers the pooled paths")
	}
	if testing.Short() {
		t.Skip("a full quick-suite run is slow")
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "all", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, stderr.String())
	}
	got := experiments.MaskTimingColumns(stdout.String())

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := range gl {
		if i >= len(wl) || gl[i] != wl[i] {
			w := "<missing>"
			if i < len(wl) {
				w = wl[i]
			}
			t.Fatalf("output diverges from golden at line %d:\ngot:    %q\ngolden: %q\n(rerun with -update if the change is intentional)", i+1, gl[i], w)
		}
	}
	t.Fatalf("output shorter than golden: %d vs %d lines (rerun with -update if intentional)", len(gl), len(wl))
}

const forecastGoldenPath = "testdata/forecast_quick.golden"

// TestForecastGolden pins the `experiments -run forecast -quick` stdout —
// the drift-gate (`make drift-test`) check that the forecast experiment's
// NRMSE/fit-count/detection-delay table is deterministic. It is cheap
// enough to run under the race detector, unlike the full-suite golden.
// Regenerate deliberately with:
//
//	go test ./cmd/experiments -run TestForecastGolden -update
func TestForecastGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "forecast", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, stderr.String())
	}
	got := experiments.MaskTimingColumns(stdout.String())

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(forecastGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(forecastGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", forecastGoldenPath, len(got))
		return
	}

	want, err := os.ReadFile(forecastGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("forecast output diverges from golden (rerun with -update if intentional):\ngot:\n%s\ngolden:\n%s", got, want)
	}
}

// TestListAndArgumentErrors covers the cheap CLI paths: -list output and
// the fast-fail argument validations.
func TestListAndArgumentErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d:\n%s", code, stderr.String())
	}
	for _, id := range []string{"table3", "table6", "figure11"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %q:\n%s", id, stdout.String())
		}
	}

	cases := []struct {
		name string
		args []string
	}{
		{"no run id", nil},
		{"unknown id", []string{"-run", "tableX"}},
		{"bad format", []string{"-run", "table3", "-format", "yaml"}},
		{"negative jobs", []string{"-run", "table3", "-j", "-1"}},
		{"bad flag", []string{"-no-such-flag"}},
		{"unknown target", []string{"-run", "robustness", "-target", "NoSuchWL"}},
		{"plan-only target", []string{"-run", "robustness", "-target", "PW"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code == 0 {
				t.Errorf("args %v: exit 0, want non-zero", tc.args)
			}
		})
	}
}
