// Command experiments regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	experiments -run table3          # one experiment
//	experiments -run all             # everything, in paper order
//	experiments -list                # available experiment ids
//	experiments -run table6 -seed 7  # different randomness
//	experiments -run all -quick      # reduced-size runs (same shapes)
//	experiments -run all -j 1        # serial execution (default: GOMAXPROCS)
//
// With -run all the experiments execute concurrently, bounded by -j
// workers; outputs are still printed in paper order and are byte-identical
// to a serial run (per-experiment timings go to stderr, not stdout).
//
// Observability: -metrics-addr ADDR serves Prometheus metrics on /metrics
// and live pprof profiles under /debug/pprof/ while the suite runs;
// -trace-out FILE dumps the pipeline stage-tracing spans as JSON on exit.
// Both write only to stderr, files, and HTTP, so stdout stays
// byte-identical with instrumentation on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wpred/internal/bench"
	"wpred/internal/experiments"
	"wpred/internal/obs"
	"wpred/internal/parallel"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runID       = flag.String("run", "", "experiment id to regenerate, or \"all\"")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		seed        = flag.Uint64("seed", 42, "randomness seed (42 reproduces EXPERIMENTS.md)")
		quick       = flag.Bool("quick", false, "reduced-size runs: same shapes, faster")
		format      = flag.String("format", "text", "output format: text or markdown")
		target      = flag.String("target", "", "robustness experiment target workload (default YCSB)")
		jobs        = flag.Int("j", 0, "max concurrent workers (0 = GOMAXPROCS, 1 = serial)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics (/metrics) and pprof profiles (/debug/pprof/) on this address, e.g. :9090")
		traceOut    = flag.String("trace-out", "", "write stage-tracing spans as JSON to this file on exit")
	)
	flag.Parse()
	if *format != "text" && *format != "markdown" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -j must be >= 0, got %d\n", *jobs)
		return 2
	}
	parallel.SetMaxWorkers(*jobs)
	if *target != "" {
		w, err := bench.ByName(*target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 2
		}
		if w.PlanOnly {
			fmt.Fprintf(os.Stderr, "experiments: workload %q is plan-only and cannot be a robustness target\n", *target)
			return 2
		}
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: debug endpoint on http://%s (metrics: /metrics, pprof: /debug/pprof/)\n", srv.Addr)
	}
	if *traceOut != "" {
		obs.SetTracing(true)
		obs.ResetTrace()
		defer func() {
			if err := obs.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return 0
	}
	if *runID == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -run <id>|all [-seed N] [-quick] [-j N]; -list shows ids")
		return 2
	}

	suite := experiments.NewSuite(*seed)
	suite.Quick = *quick
	suite.RobustnessTarget = *target

	if *runID == "all" {
		runners := experiments.Runners()
		outs, err := parallel.Map(len(runners), func(i int) (string, error) {
			return renderOne(suite, runners[i], *format)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		for _, out := range outs {
			fmt.Print(out)
		}
		return 0
	}
	r, ok := experiments.RunnerByID(*runID)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *runID)
		return 2
	}
	out, err := renderOne(suite, r, *format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Print(out)
	return 0
}

// renderOne runs one experiment and returns its formatted block. Wall-clock
// timing goes to stderr so stdout stays deterministic across -j settings.
func renderOne(suite *experiments.Suite, r experiments.Runner, format string) (string, error) {
	sp := obs.StartSpan("experiment." + r.ID)
	start := time.Now()
	var out string
	var err error
	if format == "markdown" {
		out, err = r.RunMarkdown(suite)
	} else {
		out, err = r.Run(suite)
	}
	sp.End()
	if err != nil {
		return "", fmt.Errorf("%s: %w", r.ID, err)
	}
	fmt.Fprintf(os.Stderr, "experiments: %s finished in %s\n", r.ID, time.Since(start).Round(time.Millisecond))
	if format == "markdown" {
		return fmt.Sprintf("## %s — %s\n\n%s\n", r.ID, r.Description, out), nil
	}
	return fmt.Sprintf("### %s — %s\n\n%s\n", r.ID, r.Description, out), nil
}
