// Command experiments regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	experiments -run table3          # one experiment
//	experiments -run all             # everything, in paper order
//	experiments -list                # available experiment ids
//	experiments -run table6 -seed 7  # different randomness
//	experiments -run all -quick      # reduced-size runs (same shapes)
//	experiments -run all -j 1        # serial execution (default: GOMAXPROCS)
//
// With -run all the experiments execute concurrently, bounded by -j
// workers; outputs are still printed in paper order and are byte-identical
// to a serial run (per-experiment timings go to stderr, not stdout).
//
// Observability: -metrics-addr ADDR serves Prometheus metrics on /metrics
// and live pprof profiles under /debug/pprof/ while the suite runs;
// -trace-out FILE dumps the pipeline stage-tracing spans as JSON on exit.
// Both write only to stderr, files, and HTTP, so stdout stays
// byte-identical with instrumentation on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"wpred/internal/bench"
	"wpred/internal/experiments"
	"wpred/internal/obs"
	"wpred/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, so the golden-file
// test can capture stdout exactly as a shell pipeline would see it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID       = fs.String("run", "", "experiment id to regenerate, or \"all\"")
		list        = fs.Bool("list", false, "list experiment ids and exit")
		seed        = fs.Uint64("seed", 42, "randomness seed (42 reproduces EXPERIMENTS.md)")
		quick       = fs.Bool("quick", false, "reduced-size runs: same shapes, faster")
		format      = fs.String("format", "text", "output format: text or markdown")
		target      = fs.String("target", "", "robustness experiment target workload (default YCSB)")
		jobs        = fs.Int("j", 0, "max concurrent workers (0 = GOMAXPROCS, 1 = serial)")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus metrics (/metrics) and pprof profiles (/debug/pprof/) on this address, e.g. :9090")
		traceOut    = fs.String("trace-out", "", "write stage-tracing spans as JSON to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "markdown" {
		fmt.Fprintf(stderr, "experiments: unknown format %q\n", *format)
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "experiments: -j must be >= 0, got %d\n", *jobs)
		return 2
	}
	parallel.SetMaxWorkers(*jobs)
	if *target != "" {
		w, err := bench.ByName(*target)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 2
		}
		if w.PlanOnly {
			fmt.Fprintf(stderr, "experiments: workload %q is plan-only and cannot be a robustness target\n", *target)
			return 2
		}
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "experiments: debug endpoint on http://%s (metrics: /metrics, pprof: /debug/pprof/)\n", srv.Addr)
	}
	if *traceOut != "" {
		obs.SetTracing(true)
		obs.ResetTrace()
		defer func() {
			if err := obs.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(stderr, "experiments: trace-out:", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Fprintf(stdout, "%-10s %s\n", r.ID, r.Description)
		}
		return 0
	}
	if *runID == "" {
		fmt.Fprintln(stderr, "usage: experiments -run <id>|all [-seed N] [-quick] [-j N]; -list shows ids")
		return 2
	}

	suite := experiments.NewSuite(*seed)
	suite.Quick = *quick
	suite.RobustnessTarget = *target

	if *runID == "all" {
		runners := experiments.Runners()
		outs, err := parallel.Map(len(runners), func(i int) (string, error) {
			return renderOne(stderr, suite, runners[i], *format)
		})
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		for _, out := range outs {
			fmt.Fprint(stdout, out)
		}
		return 0
	}
	r, ok := experiments.RunnerByID(*runID)
	if !ok {
		fmt.Fprintf(stderr, "experiments: unknown id %q (use -list)\n", *runID)
		return 2
	}
	out, err := renderOne(stderr, suite, r, *format)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, out)
	return 0
}

// renderOne runs one experiment and returns its formatted block. Wall-clock
// timing goes to stderr so stdout stays deterministic across -j settings.
func renderOne(stderr io.Writer, suite *experiments.Suite, r experiments.Runner, format string) (string, error) {
	sp := obs.StartSpan("experiment." + r.ID)
	start := time.Now()
	var out string
	var err error
	if format == "markdown" {
		out, err = r.RunMarkdown(suite)
	} else {
		out, err = r.Run(suite)
	}
	sp.End()
	if err != nil {
		return "", fmt.Errorf("%s: %w", r.ID, err)
	}
	fmt.Fprintf(stderr, "experiments: %s finished in %s\n", r.ID, time.Since(start).Round(time.Millisecond))
	if format == "markdown" {
		return fmt.Sprintf("## %s — %s\n\n%s\n", r.ID, r.Description, out), nil
	}
	return fmt.Sprintf("### %s — %s\n\n%s\n", r.ID, r.Description, out), nil
}
