// Command experiments regenerates the paper's tables and figures from the
// simulated substrate.
//
// Usage:
//
//	experiments -run table3          # one experiment
//	experiments -run all             # everything, in paper order
//	experiments -list                # available experiment ids
//	experiments -run table6 -seed 7  # different randomness
//	experiments -run all -quick      # reduced-size runs (same shapes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wpred/internal/bench"
	"wpred/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment id to regenerate, or \"all\"")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		seed   = flag.Uint64("seed", 42, "randomness seed (42 reproduces EXPERIMENTS.md)")
		quick  = flag.Bool("quick", false, "reduced-size runs: same shapes, faster")
		format = flag.String("format", "text", "output format: text or markdown")
		target = flag.String("target", "", "robustness experiment target workload (default YCSB)")
	)
	flag.Parse()
	if *format != "text" && *format != "markdown" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *target != "" {
		w, err := bench.ByName(*target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if w.PlanOnly {
			fmt.Fprintf(os.Stderr, "experiments: workload %q is plan-only and cannot be a robustness target\n", *target)
			os.Exit(2)
		}
	}

	if *list {
		for _, r := range experiments.Runners() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -run <id>|all [-seed N] [-quick]; -list shows ids")
		os.Exit(2)
	}

	suite := experiments.NewSuite(*seed)
	suite.Quick = *quick
	suite.RobustnessTarget = *target

	if *run == "all" {
		for _, r := range experiments.Runners() {
			if err := runOne(suite, r, *format); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	r, ok := experiments.RunnerByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *run)
		os.Exit(2)
	}
	if err := runOne(suite, r, *format); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
		os.Exit(1)
	}
}

func runOne(suite *experiments.Suite, r experiments.Runner, format string) error {
	start := time.Now()
	var out string
	var err error
	if format == "markdown" {
		out, err = r.RunMarkdown(suite)
	} else {
		out, err = r.Run(suite)
	}
	if err != nil {
		return err
	}
	if format == "markdown" {
		fmt.Printf("## %s — %s\n\n%s\n", r.ID, r.Description, out)
		return nil
	}
	fmt.Printf("### %s — %s (%s)\n\n%s\n", r.ID, r.Description, time.Since(start).Round(time.Millisecond), out)
	return nil
}
