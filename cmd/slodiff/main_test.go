package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wpred/internal/loadgen"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshalling %s: %v", name, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	return path
}

func testReport() *loadgen.Report {
	return &loadgen.Report{
		Profile:       loadgen.Profile{Name: "quick"},
		ThroughputRPS: 40,
		Requests:      loadgen.RequestStats{Sent: 100, OK: 100},
		Latency:       loadgen.LatencyStats{Count: 100, P50Ms: 5, P95Ms: 20, P99Ms: 40},
	}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	rep := writeJSON(t, dir, "report.json", testReport())
	base := writeJSON(t, dir, "baseline.json", loadgen.Baseline{Profiles: map[string]loadgen.SLO{
		"quick": {MaxP50Ms: 100, MaxP95Ms: 200, MaxP99Ms: 500, MinThroughputRPS: 10, RequireAllOK: true},
	}})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-report", rep, "-baseline", base}, &stdout, &stderr); code != 0 {
		t.Fatalf("healthy report exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Errorf("stdout does not say PASS: %s", stdout.String())
	}
}

// TestGateFailsOnInjectedRegression is the acceptance check that the SLO
// gate actually gates: tighten the baseline below the measured values and
// the exit code must flip to 1 with the violations named.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	rep := writeJSON(t, dir, "report.json", testReport())
	base := writeJSON(t, dir, "baseline.json", loadgen.Baseline{Profiles: map[string]loadgen.SLO{
		"quick": {MaxP50Ms: 1, MinThroughputRPS: 1000},
	}})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-report", rep, "-baseline", base}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed report exited %d, want 1\nstdout: %s", code, stdout.String())
	}
	for _, want := range []string{"FAIL", "p50", "throughput"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q: %s", want, stdout.String())
		}
	}
}

func TestGateBadInputs(t *testing.T) {
	dir := t.TempDir()
	rep := writeJSON(t, dir, "report.json", testReport())
	base := writeJSON(t, dir, "baseline.json", loadgen.Baseline{Profiles: map[string]loadgen.SLO{
		"steady": {},
	}})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-report", rep, "-baseline", base}, &stdout, &stderr); code != 2 {
		t.Errorf("missing baseline profile exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "steady") {
		t.Errorf("stderr does not list available profiles: %s", stderr.String())
	}
	if code := run([]string{"-report", filepath.Join(dir, "absent.json"), "-baseline", base}, &stdout, &stderr); code != 2 {
		t.Error("missing report file should exit 2")
	}
}
