// Command slodiff gates a wpredload report against committed SLO limits,
// the same shape benchdiff gives microbenchmarks: a JSON artifact, a
// committed baseline, and a non-zero exit when the run regressed.
//
// Usage:
//
//	wpredload -self -profile quick -o SLO.check.json
//	slodiff -report SLO.check.json -baseline SLO.baseline.json
//
// The baseline maps profile names to limits; the report's own profile
// name picks the entry (override with -profile). Zero-valued limits are
// not enforced, so a baseline states exactly what it checks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wpred/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slodiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		reportPath   = fs.String("report", "SLO.check.json", "wpredload JSON report to check")
		baselinePath = fs.String("baseline", "SLO.baseline.json", "committed SLO limits (profile name -> limits)")
		profile      = fs.String("profile", "", "baseline entry to check against (default: the report's own profile name)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var rep loadgen.Report
	if err := readJSON(*reportPath, &rep); err != nil {
		fmt.Fprintln(stderr, "slodiff:", err)
		return 2
	}
	var base loadgen.Baseline
	if err := readJSON(*baselinePath, &base); err != nil {
		fmt.Fprintln(stderr, "slodiff:", err)
		return 2
	}

	name := *profile
	if name == "" {
		name = rep.Profile.Name
	}
	slo, ok := base.Profiles[name]
	if !ok {
		fmt.Fprintf(stderr, "slodiff: baseline %s has no profile %q (have: %s)\n",
			*baselinePath, name, strings.Join(base.ProfileNames(), ", "))
		return 2
	}

	violations := slo.Evaluate(&rep)
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "slodiff: PASS profile %s: %d requests, %.1f rps, p50 %.2fms p95 %.2fms p99 %.2fms, %d shed, %d errors\n",
			name, rep.Requests.Sent, rep.ThroughputRPS,
			rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms,
			rep.Requests.Shed, rep.Requests.ServerErr+rep.Requests.TransportErr)
		return 0
	}
	fmt.Fprintf(stdout, "slodiff: FAIL profile %s: %d violation(s)\n", name, len(violations))
	for _, v := range violations {
		fmt.Fprintf(stdout, "slodiff:   %s: %s\n", v.Check, v.Detail)
	}
	return 1
}

func readJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}
