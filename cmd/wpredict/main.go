// Command wpredict runs the end-to-end pipeline on simulated telemetry: it
// profiles a target workload on its current hardware, matches it against
// the reference benchmarks, and predicts its throughput on a different
// SKU.
//
// Usage:
//
//	wpredict -workload YCSB -from 2 -to 8
//	wpredict -workload TPC-C -from 4 -to 16 -terminals 32 -seed 7
//	wpredict -telemetry target.json -to 8      # real telemetry from wlgen-format JSON
//
// The "reference distances" table is printed in ascending-distance order
// (ties broken by workload name), so two runs with the same flags produce
// byte-identical stdout.
//
// Observability: -debug-addr ADDR serves Prometheus metrics on
// /metrics and live pprof profiles under /debug/pprof/; -trace-out
// FILE dumps the pipeline stage spans as JSON on exit. Both write only to
// stderr, files, and HTTP — stdout is identical with or without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"wpred"
	"wpred/internal/obs"
	"wpred/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, so the determinism
// tests can execute the full output path twice and compare bytes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wpredict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "YCSB", "target workload to simulate (see -listworkloads)")
		telFile   = fs.String("telemetry", "", "load target experiments from a JSON stream (wlgen/library format) instead of simulating")
		fromCPUs  = fs.Int("from", 2, "current SKU CPU count (ignored with -telemetry)")
		toCPUs    = fs.Int("to", 8, "target SKU CPU count")
		terminals = fs.Int("terminals", 8, "concurrent terminals")
		seed      = fs.Uint64("seed", 42, "randomness seed")
		listWL    = fs.Bool("listworkloads", false, "list workload names and exit")
		debugAddr = fs.String("debug-addr", "", "serve Prometheus metrics (/metrics) and pprof profiles (/debug/pprof/) on this address, e.g. localhost:6060")
		traceOut  = fs.String("trace-out", "", "write pipeline stage-tracing spans as JSON to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listWL {
		for _, n := range wpred.WorkloadNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(stderr, "wpredict:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "wpredict: debug endpoint on http://%s (metrics: /metrics, pprof: /debug/pprof/)\n", srv.Addr)
	}
	if *traceOut != "" {
		obs.SetTracing(true)
		obs.ResetTrace()
		defer func() {
			if err := obs.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(stderr, "wpredict: trace-out:", err)
			}
		}()
	}

	src := wpred.NewSource(*seed)

	// Target experiments: either externally collected telemetry or a
	// simulated run of the named benchmark.
	var targetExps []*wpred.Experiment
	var targetName string
	if *telFile != "" {
		f, err := os.Open(*telFile)
		if err != nil {
			fmt.Fprintln(stderr, "wpredict:", err)
			return 2
		}
		targetExps, err = telemetry.ReadExperiments(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "wpredict:", err)
			return 1
		}
		if len(targetExps) == 0 {
			fmt.Fprintln(stderr, "wpredict: no experiments in", *telFile)
			return 1
		}
		targetName = targetExps[0].Workload
	} else {
		targetName = *workload
	}

	var fromSKU wpred.SKU
	if len(targetExps) > 0 {
		fromSKU = targetExps[0].SKU
	} else {
		fromSKU = wpred.SKU{CPUs: *fromCPUs, MemoryGB: 8 * *fromCPUs}
	}
	toSKU := wpred.SKU{CPUs: *toCPUs, MemoryGB: 8 * *toCPUs}

	// Reference knowledge base: every standard benchmark except the
	// target itself, profiled on both SKUs.
	var refs []*wpred.Workload
	for _, w := range wpred.ReferenceWorkloads() {
		if w.Name != targetName {
			refs = append(refs, w)
		}
	}
	refExps := wpred.GenerateSuite(refs, []wpred.SKU{fromSKU, toSKU}, []int{*terminals}, 3, src)

	if targetExps == nil {
		target, err := wpred.WorkloadByName(*workload)
		if err != nil {
			fmt.Fprintln(stderr, "wpredict:", err)
			return 2
		}
		targetExps = wpred.GenerateSuite([]*wpred.Workload{target}, []wpred.SKU{fromSKU}, []int{*terminals}, 3, src)
	}

	// warned counts dropped-experiment warnings already printed, so each
	// sanitization rejection is reported once across Train and Predict.
	warned := 0
	warnDropped := func(p *wpred.Pipeline) {
		dropped := p.Dropped()
		for _, d := range dropped[warned:] {
			fmt.Fprintf(stderr, "wpredict: warning: dropped %s (%s, %s): %s\n",
				d.ID, d.Workload, d.Stage, d.Report)
		}
		warned = len(dropped)
	}

	p := wpred.NewPipeline(wpred.PipelineConfig{Seed: *seed})
	if err := p.Train(refExps); err != nil {
		fmt.Fprintln(stderr, "wpredict: train:", err)
		return 1
	}
	warnDropped(p)
	pred, err := p.Predict(targetExps, toSKU)
	warnDropped(p)
	if err != nil {
		fmt.Fprintln(stderr, "wpredict: predict:", err)
		return 1
	}

	fmt.Fprintf(stdout, "target workload:      %s (%d experiments)\n", targetName, len(targetExps))
	fmt.Fprintf(stdout, "selected features:    %v\n", pred.SelectedFeatures)
	fmt.Fprintf(stdout, "nearest reference:    %s\n", pred.NearestReference)
	fmt.Fprintln(stdout, "reference distances:")
	for _, name := range sortedByDistance(pred.Distances) {
		fmt.Fprintf(stdout, "  %-10s %.3f\n", name, pred.Distances[name])
	}
	fmt.Fprintf(stdout, "observed on %-9s %.1f req/s\n", fromSKU.String()+":", pred.ObservedThroughput)
	fmt.Fprintf(stdout, "predicted on %-8s %.1f req/s (factor %.2f)\n", toSKU.String()+":", pred.PredictedThroughput, pred.ScalingFactor)

	// Ground truth from the simulator, for comparison (simulated targets
	// only: real telemetry has no oracle).
	if *telFile == "" {
		target, err := wpred.WorkloadByName(targetName)
		if err != nil {
			return 0
		}
		actual := wpred.GenerateSuite([]*wpred.Workload{target}, []wpred.SKU{toSKU}, []int{*terminals}, 3, src)
		printComparison(stdout, stderr, toSKU, actual, pred.PredictedThroughput)
	}
	return 0
}

// sortedByDistance orders the reference names by ascending distance, with
// the workload name breaking ties, so the printed table is deterministic
// (map iteration order is not).
func sortedByDistance(dists map[string]float64) []string {
	names := make([]string, 0, len(dists))
	for n := range dists {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool {
		da, db := dists[names[a]], dists[names[b]]
		if da != db {
			return da < db
		}
		return names[a] < names[b]
	})
	return names
}

// printComparison prints the simulated ground-truth line. An empty
// ground-truth suite or a non-positive mean throughput would make the
// prediction-error ratio NaN or ±Inf, so those cases skip the line with a
// stderr warning instead.
func printComparison(stdout, stderr io.Writer, toSKU wpred.SKU, actual []*wpred.Experiment, predicted float64) {
	if len(actual) == 0 {
		fmt.Fprintln(stderr, "wpredict: warning: ground-truth simulation produced no experiments; skipping comparison")
		return
	}
	mean := 0.0
	for _, e := range actual {
		mean += e.Throughput
	}
	mean /= float64(len(actual))
	if mean <= 0 {
		fmt.Fprintf(stderr, "wpredict: warning: ground-truth mean throughput is %.1f req/s; skipping comparison\n", mean)
		return
	}
	fmt.Fprintf(stdout, "actual on %-11s %.1f req/s (prediction error %.1f%%)\n",
		toSKU.String()+":", mean, 100*abs(predicted-mean)/mean)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
