// Command wpredict runs the end-to-end pipeline on simulated telemetry: it
// profiles a target workload on its current hardware, matches it against
// the reference benchmarks, and predicts its throughput on a different
// SKU.
//
// Usage:
//
//	wpredict -workload YCSB -from 2 -to 8
//	wpredict -workload TPC-C -from 4 -to 16 -terminals 32 -seed 7
//	wpredict -telemetry target.json -to 8      # real telemetry from wlgen-format JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"wpred"
	"wpred/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "YCSB", "target workload to simulate (see -listworkloads)")
		telFile   = flag.String("telemetry", "", "load target experiments from a JSON stream (wlgen/library format) instead of simulating")
		fromCPUs  = flag.Int("from", 2, "current SKU CPU count (ignored with -telemetry)")
		toCPUs    = flag.Int("to", 8, "target SKU CPU count")
		terminals = flag.Int("terminals", 8, "concurrent terminals")
		seed      = flag.Uint64("seed", 42, "randomness seed")
		listWL    = flag.Bool("listworkloads", false, "list workload names and exit")
	)
	flag.Parse()

	if *listWL {
		for _, n := range wpred.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	src := wpred.NewSource(*seed)

	// Target experiments: either externally collected telemetry or a
	// simulated run of the named benchmark.
	var targetExps []*wpred.Experiment
	var targetName string
	if *telFile != "" {
		f, err := os.Open(*telFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wpredict:", err)
			os.Exit(2)
		}
		targetExps, err = telemetry.ReadExperiments(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wpredict:", err)
			os.Exit(1)
		}
		if len(targetExps) == 0 {
			fmt.Fprintln(os.Stderr, "wpredict: no experiments in", *telFile)
			os.Exit(1)
		}
		targetName = targetExps[0].Workload
	} else {
		targetName = *workload
	}

	var fromSKU wpred.SKU
	if len(targetExps) > 0 {
		fromSKU = targetExps[0].SKU
	} else {
		fromSKU = wpred.SKU{CPUs: *fromCPUs, MemoryGB: 8 * *fromCPUs}
	}
	toSKU := wpred.SKU{CPUs: *toCPUs, MemoryGB: 8 * *toCPUs}

	// Reference knowledge base: every standard benchmark except the
	// target itself, profiled on both SKUs.
	var refs []*wpred.Workload
	for _, w := range wpred.ReferenceWorkloads() {
		if w.Name != targetName {
			refs = append(refs, w)
		}
	}
	refExps := wpred.GenerateSuite(refs, []wpred.SKU{fromSKU, toSKU}, []int{*terminals}, 3, src)

	if targetExps == nil {
		target, err := wpred.WorkloadByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wpredict:", err)
			os.Exit(2)
		}
		targetExps = wpred.GenerateSuite([]*wpred.Workload{target}, []wpred.SKU{fromSKU}, []int{*terminals}, 3, src)
	}

	p := wpred.NewPipeline(wpred.PipelineConfig{Seed: *seed})
	if err := p.Train(refExps); err != nil {
		fmt.Fprintln(os.Stderr, "wpredict: train:", err)
		os.Exit(1)
	}
	warnDropped(p)
	pred, err := p.Predict(targetExps, toSKU)
	warnDropped(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wpredict: predict:", err)
		os.Exit(1)
	}

	fmt.Printf("target workload:      %s (%d experiments)\n", targetName, len(targetExps))
	fmt.Printf("selected features:    %v\n", pred.SelectedFeatures)
	fmt.Printf("nearest reference:    %s\n", pred.NearestReference)
	fmt.Println("reference distances:")
	for name, d := range pred.Distances {
		fmt.Printf("  %-10s %.3f\n", name, d)
	}
	fmt.Printf("observed on %-9s %.1f req/s\n", fromSKU.String()+":", pred.ObservedThroughput)
	fmt.Printf("predicted on %-8s %.1f req/s (factor %.2f)\n", toSKU.String()+":", pred.PredictedThroughput, pred.ScalingFactor)

	// Ground truth from the simulator, for comparison (simulated targets
	// only: real telemetry has no oracle).
	if *telFile == "" {
		target, err := wpred.WorkloadByName(targetName)
		if err != nil {
			return
		}
		actual := wpred.GenerateSuite([]*wpred.Workload{target}, []wpred.SKU{toSKU}, []int{*terminals}, 3, src)
		mean := 0.0
		for _, e := range actual {
			mean += e.Throughput
		}
		mean /= float64(len(actual))
		fmt.Printf("actual on %-11s %.1f req/s (prediction error %.1f%%)\n",
			toSKU.String()+":", mean, 100*abs(pred.PredictedThroughput-mean)/mean)
	}
}

// warned counts dropped-experiment warnings already printed, so each
// sanitization rejection is reported once across Train and Predict.
var warned int

func warnDropped(p *wpred.Pipeline) {
	dropped := p.Dropped()
	for _, d := range dropped[warned:] {
		fmt.Fprintf(os.Stderr, "wpredict: warning: dropped %s (%s, %s): %s\n",
			d.ID, d.Workload, d.Stage, d.Report)
	}
	warned = len(dropped)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
