package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"wpred"
)

// runOnce executes the CLI output path with captured streams.
func runOnce(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestStdoutByteIdenticalAcrossRuns is the CLI determinism guarantee: two
// runs with identical flags must produce byte-identical stdout. Before the
// reference-distance table was sorted, Go map iteration order reshuffled
// it run to run.
func TestStdoutByteIdenticalAcrossRuns(t *testing.T) {
	args := []string{"-workload", "YCSB", "-from", "2", "-to", "4", "-terminals", "4", "-seed", "7"}
	a, _, codeA := runOnce(t, args...)
	b, _, codeB := runOnce(t, args...)
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exit codes %d, %d", codeA, codeB)
	}
	if a != b {
		t.Fatalf("stdout differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "reference distances:") {
		t.Fatalf("missing distance table:\n%s", a)
	}
}

// TestDistancesSortedAscending checks the printed table ordering: ascending
// distance, name-tie-broken.
func TestDistancesSortedAscending(t *testing.T) {
	out, _, code := runOnce(t, "-workload", "YCSB", "-from", "2", "-to", "4", "-terminals", "4")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	lines := strings.Split(out, "\n")
	var dists []float64
	inTable := false
	for _, l := range lines {
		if l == "reference distances:" {
			inTable = true
			continue
		}
		if !inTable {
			continue
		}
		if !strings.HasPrefix(l, "  ") {
			break
		}
		fields := strings.Fields(l)
		if len(fields) != 2 {
			t.Fatalf("malformed distance line %q", l)
		}
		d, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("distance %q: %v", fields[1], err)
		}
		dists = append(dists, d)
	}
	if len(dists) < 2 {
		t.Fatalf("expected several distance rows, got %d:\n%s", len(dists), out)
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatalf("distances not ascending at row %d: %v", i, dists)
		}
	}
}

func TestSortedByDistanceTieBreak(t *testing.T) {
	got := sortedByDistance(map[string]float64{"b": 1, "a": 1, "c": 0.5})
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestPrintComparisonGuards covers the NaN/Inf bug: an empty ground-truth
// suite or zero mean throughput must skip the comparison line with a
// stderr warning instead of printing NaN/+Inf.
func TestPrintComparisonGuards(t *testing.T) {
	sku := wpred.SKU{CPUs: 4, MemoryGB: 32}

	var out, errb bytes.Buffer
	printComparison(&out, &errb, sku, nil, 100)
	if out.Len() != 0 {
		t.Fatalf("empty suite must print nothing to stdout, got %q", out.String())
	}
	if !strings.Contains(errb.String(), "warning") {
		t.Fatalf("empty suite must warn on stderr, got %q", errb.String())
	}

	out.Reset()
	errb.Reset()
	zero := []*wpred.Experiment{{Workload: "X", Throughput: 0}, {Workload: "X", Throughput: 0}}
	printComparison(&out, &errb, sku, zero, 100)
	if out.Len() != 0 {
		t.Fatalf("zero-mean suite must print nothing to stdout, got %q", out.String())
	}
	if !strings.Contains(errb.String(), "warning") {
		t.Fatalf("zero-mean suite must warn on stderr, got %q", errb.String())
	}

	out.Reset()
	errb.Reset()
	ok := []*wpred.Experiment{{Workload: "X", Throughput: 50}, {Workload: "X", Throughput: 150}}
	printComparison(&out, &errb, sku, ok, 100)
	s := out.String()
	if !strings.Contains(s, "prediction error 0.0%") {
		t.Fatalf("healthy suite comparison = %q", s)
	}
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("non-finite value leaked: %q", s)
	}
}

// TestStdoutUnchangedWithObservability asserts the instrumentation
// contract at the CLI level: enabling -debug-addr and -trace-out leaves
// stdout byte-identical, and the trace file is valid JSON with pipeline
// spans.
func TestStdoutUnchangedWithObservability(t *testing.T) {
	args := []string{"-workload", "YCSB", "-from", "2", "-to", "4", "-terminals", "4", "-seed", "7"}
	plain, _, code := runOnce(t, args...)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}

	traceFile := filepath.Join(t.TempDir(), "spans.json")
	instrumented, stderrText, code := runOnce(t,
		append([]string{"-debug-addr", "127.0.0.1:0", "-trace-out", traceFile}, args...)...)
	if code != 0 {
		t.Fatalf("instrumented exit code %d, stderr:\n%s", code, stderrText)
	}
	if instrumented != plain {
		t.Fatalf("stdout changed with instrumentation on:\n--- plain ---\n%s\n--- instrumented ---\n%s", plain, instrumented)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, s := range doc.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"pipeline.train", "pipeline.predict", "sanitize", "featsel", "similarity", "scalemodel"} {
		if !names[want] {
			t.Fatalf("trace missing span %q; have %v", want, names)
		}
	}
}
