// Command wpredrouter is the fault-tolerant front door of a wpredd fleet:
// it consistent-hashes each prediction's registry key across the backends
// (so every key is trained once fleet-wide — pair it with a shared
// -snapshot-dir on the backends) and hides individual backend failures
// behind retries, failover, circuit breakers, and per-tenant quotas.
//
// Usage:
//
//	wpredrouter -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	wpredrouter -addr :8090 -backends ... -quota-rate 50 -quota-burst 100
//
// Endpoints:
//
//	POST /v1/predict        routed to the key's backend, failover on error
//	POST /v1/predict/batch  routed by the first item's key
//	GET  /healthz           router liveness + per-backend health/breaker view
//	GET  /readyz            503 until at least one backend is routable
//
// Shutdown: SIGTERM/SIGINT stops the health probes and drains in-flight
// requests for up to -drain-timeout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wpred/internal/obs"
	"wpred/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable context and streams, so tests drive the
// full router lifecycle by cancelling ctx instead of delivering signals.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wpredrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8090", "HTTP listen address for the routing front door")
		backends     = fs.String("backends", "", "comma-separated wpredd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
		replicas     = fs.Int("replicas", 64, "virtual nodes per backend on the consistent-hash ring")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-attempt timeout against one backend")
		retries      = fs.Int("retries", 2, "max attempts beyond the first per request")
		retryBudget  = fs.Float64("retry-budget", 0.1, "retry budget as a fraction of the request rate")
		brkThreshold = fs.Int("breaker-threshold", 3, "consecutive failures that open a backend's circuit breaker")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects before a half-open probe")
		backoffBase  = fs.Duration("backoff-base", 25*time.Millisecond, "first retry's backoff window (full jitter)")
		backoffMax   = fs.Duration("backoff-max", time.Second, "backoff window cap")
		healthEvery  = fs.Duration("health-interval", 2*time.Second, "active /healthz probe interval per backend")
		quotaRate    = fs.Float64("quota-rate", 0, "per-tenant requests/second (X-Tenant header); 0 disables quotas")
		quotaBurst   = fs.Float64("quota-burst", 0, "per-tenant burst depth (default max(rate, 1))")
		maxTenants   = fs.Int("max-tenants", 1024, "tracked-tenant bound; tenants beyond it share one overflow bucket")
		maxBody      = fs.Int64("max-body", 8<<20, "request-body cap in bytes")
		seed         = fs.Uint64("seed", 42, "seed for the backoff jitter")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus metrics (/metrics) and pprof (/debug/pprof/) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	urls, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(stderr, "wpredrouter:", err)
		return 2
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "wpredrouter:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "wpredrouter: debug endpoint on http://%s (metrics: /metrics, pprof: /debug/pprof/)\n", srv.Addr)
	}

	rt, err := router.New(router.Config{
		Backends:         urls,
		Replicas:         *replicas,
		Timeout:          *timeout,
		Retries:          *retries,
		RetryBudgetRatio: *retryBudget,
		Breaker:          router.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		Backoff:          router.Backoff{Base: *backoffBase, Max: *backoffMax},
		Quota:            router.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst, MaxTenants: *maxTenants},
		HealthInterval:   *healthEvery,
		MaxBodyBytes:     *maxBody,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "wpredrouter:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "wpredrouter:", err)
		return 1
	}
	hs := &http.Server{Handler: rt.Handler()}
	go func() { _ = hs.Serve(ln) }()
	rt.Start(ctx)
	fmt.Fprintf(stderr, "wpredrouter: routing %d backend(s) on %s\n", len(urls), ln.Addr())

	<-ctx.Done()
	fmt.Fprintf(stderr, "wpredrouter: shutdown signal received; draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = hs.Shutdown(drainCtx)
	rt.Wait()
	if err != nil {
		fmt.Fprintln(stderr, "wpredrouter: drain incomplete:", err)
		return 1
	}
	fmt.Fprintln(stderr, "wpredrouter: drained cleanly")
	return 0
}

// parseBackends validates the -backends list: non-empty, absolute
// http/https URLs, no trailing slash ambiguity.
func parseBackends(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-backends is required (comma-separated wpredd base URLs)")
	}
	var urls []string
	for _, tok := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(tok), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("-backends: %q is not an absolute http(s) URL", tok)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, errors.New("-backends: no usable URLs")
	}
	return urls, nil
}
