package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWatcher mirrors the wpredd test helper: a threadsafe stderr sink
// that signals when a pattern appears, so tests learn the bound address
// of a router started with -addr 127.0.0.1:0.
type lineWatcher struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	pattern *regexp.Regexp
	found   chan []string
	done    bool
}

func newLineWatcher(pattern string) *lineWatcher {
	return &lineWatcher{pattern: regexp.MustCompile(pattern), found: make(chan []string, 1)}
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.done {
		if m := w.pattern.FindStringSubmatch(w.buf.String()); m != nil {
			w.done = true
			w.found <- m
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRouterDaemonLifecycle drives the full wpredrouter lifecycle: start
// against a stub backend, proxy one request, drain cleanly on cancel.
func TestRouterDaemonLifecycle(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.Write([]byte(`{"served":true}`))
	}))
	defer backend.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stderr := newLineWatcher(`routing 1 backend\(s\) on (\S+)`)
	var stdout bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", backend.URL,
			"-health-interval", "50ms",
		}, &stdout, stderr)
	}()

	var addr string
	select {
	case m := <-stderr.found:
		addr = m[1]
	case code := <-exit:
		t.Fatalf("router exited early with %d:\n%s", code, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("router never started:\n%s", stderr.String())
	}

	resp, err := http.Post("http://"+addr+"/v1/predict", "application/json",
		strings.NewReader(`{"selection":"Variance","metric":"L2,1","model":"Regression"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("served")) {
		t.Fatalf("proxied request: status %d body %s", resp.StatusCode, body)
	}
	if resp, err := http.Get("http://" + addr + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after graceful shutdown:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("router did not exit:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("drain log line missing:\n%s", stderr.String())
	}
}

// TestRouterFlagValidation covers the fast-fail argument errors.
func TestRouterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no backends", nil},
		{"blank backends", []string{"-backends", " , "}},
		{"relative backend", []string{"-backends", "10.0.0.1:8080"}},
		{"bad flag", []string{"-no-such-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if code := run(ctx, tc.args, &out, &errb); code == 0 {
				t.Errorf("args %v: exit 0, want non-zero\nstderr: %s", tc.args, errb.String())
			}
		})
	}
}

// TestParseBackends pins the -backends syntax.
func TestParseBackends(t *testing.T) {
	urls, err := parseBackends(" http://a:8080/ ,http://b:8080,, ")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://a:8080" || urls[1] != "http://b:8080" {
		t.Errorf("parseBackends = %v", urls)
	}
}
