// Command wlgen generates simulated workload telemetry and writes it as
// JSON (the library's experiment format, consumable by `wpredict
// -telemetry`) plus a CSV of the resource time series for external
// tooling.
//
// Usage:
//
//	wlgen -workload TPC-C -cpus 8 -terminals 32 -out tpcc8
//	wlgen -workload YCSB -cpus 4 -runs 3 -out -   # JSON stream to stdout
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"wpred"
	"wpred/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "TPC-C", "workload to simulate")
		cpus      = flag.Int("cpus", 8, "SKU CPU count")
		memory    = flag.Int("memory", 0, "SKU memory GiB (default 8×cpus)")
		terminals = flag.Int("terminals", 8, "concurrent terminals")
		runs      = flag.Int("runs", 1, "repetitions")
		seed      = flag.Uint64("seed", 42, "randomness seed")
		out       = flag.String("out", "telemetry", "output prefix, or \"-\" for a JSON stream on stdout")
	)
	flag.Parse()

	w, err := wpred.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(2)
	}
	mem := *memory
	if mem == 0 {
		mem = 8 * *cpus
	}
	sku := wpred.SKU{CPUs: *cpus, MemoryGB: mem}
	src := wpred.NewSource(*seed)

	for r := 0; r < *runs; r++ {
		exp := wpred.Simulate(w, wpred.SimConfig{
			SKU: sku, Terminals: *terminals, Run: r, DataGroup: r % 3,
		}, src)
		if err := emit(exp, *out, r); err != nil {
			fmt.Fprintln(os.Stderr, "wlgen:", err)
			os.Exit(1)
		}
	}
}

func emit(exp *wpred.Experiment, prefix string, run int) error {
	if prefix == "-" {
		return telemetry.WriteExperiment(os.Stdout, exp)
	}

	jsonPath := fmt.Sprintf("%s_run%d.json", prefix, run)
	jf, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := telemetry.WriteExperiment(jf, exp); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}

	csvPath := fmt.Sprintf("%s_run%d_resources.csv", prefix, run)
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(cf)
	header := []string{"tick"}
	feats := telemetry.ResourceFeatures()
	for _, f := range feats {
		header = append(header, f.String())
	}
	header = append(header, "THROUGHPUT")
	if err := cw.Write(header); err != nil {
		cf.Close()
		return err
	}
	for t := 0; t < exp.Resources.Len(); t++ {
		row := []string{strconv.Itoa(t)}
		for _, f := range feats {
			row = append(row, strconv.FormatFloat(exp.Resources.Feature(f)[t], 'g', 8, 64))
		}
		tp := 0.0
		if t < len(exp.ThroughputSeries) {
			tp = exp.ThroughputSeries[t]
		}
		row = append(row, strconv.FormatFloat(tp, 'g', 8, 64))
		if err := cw.Write(row); err != nil {
			cf.Close()
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		cf.Close()
		return err
	}
	fmt.Printf("wrote %s and %s\n", jsonPath, csvPath)
	return cf.Close()
}
