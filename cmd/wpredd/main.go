// Command wpredd is the long-running prediction service: it loads (or
// simulates) a reference telemetry suite once at startup, pre-trains the
// default prediction pipeline into the model registry, and serves
// throughput predictions over a stdlib-only HTTP JSON API until SIGTERM.
//
// Usage:
//
//	wpredd -addr :8080
//	wpredd -addr :8080 -telemetry refs.json -seed 7
//	wpredd -addr :8080 -warm "RFE LogReg|L2,1|SVM;Variance|Fro|Regression"
//	wpredd -addr :8080 -snapshot-dir /var/lib/wpredd/snapshots
//
// Endpoints:
//
//	POST /v1/predict        one prediction (see README for the request shape)
//	POST /v1/predict/batch  micro-batched predictions, 429 when the queue is full
//	POST /v1/observe        feedback observations for streaming drift detection;
//	                        confirmed non-cyclic drift refits the key in the background
//	GET  /healthz           process liveness, with snapshot and drift status
//	GET  /readyz            503 until warmup completes, 200 after
//
// Shutdown: SIGTERM/SIGINT flips /readyz to 503 and drains in-flight
// requests for up to -drain-timeout before exiting; with -snapshot-dir
// the drain also persists every trained pipeline, so the next start
// serves byte-identical predictions without refitting.
//
// Observability: -metrics-addr ADDR serves Prometheus metrics on /metrics
// and live pprof profiles under /debug/pprof/ on a private mux;
// -trace-out FILE dumps tracing spans as JSON on exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wpred"
	"wpred/internal/drift"
	"wpred/internal/obs"
	"wpred/internal/serve"
	"wpred/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable context and streams: tests drive the full
// daemon lifecycle (startup, warmup, serving, graceful drain) by
// cancelling ctx instead of delivering a real signal.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wpredd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address for the prediction API")
		telFile      = fs.String("telemetry", "", "load the reference suite from a JSON stream (wlgen/library format) instead of simulating")
		seed         = fs.Uint64("seed", 42, "randomness seed for the simulated suite and every model fit")
		skus         = fs.String("skus", "2,4,8,16", "comma-separated CPU counts to profile the simulated references on (memory scales 8 GB/CPU)")
		terminals    = fs.Int("terminals", 8, "concurrent terminals for the simulated references")
		runs         = fs.Int("runs", 3, "simulated runs per workload × SKU")
		registryCap  = fs.Int("registry-cap", 8, "max trained pipelines resident in the model registry (LRU beyond)")
		queueSlots   = fs.Int("queue", 64, "admission-queue capacity in prediction items; excess load gets 429")
		maxBody      = fs.Int64("max-body", 8<<20, "request-body cap in bytes; larger bodies get 413")
		warm         = fs.String("warm", "", `extra registry keys to pre-train, semicolon-separated "selection|metric|model" triples (empty fields take the defaults; metric names may contain commas)`)
		snapshotDir  = fs.String("snapshot-dir", "", "persist trained pipelines here and warm-restart from them; share the directory across replicas to train each key once fleet-wide")
		indexThresh  = fs.Int("index-threshold", 0, "route nearest-reference lookups through the VP-tree index once a same-SKU reference set reaches this size (0 = pipeline default 256, negative disables indexing)")
		indexK       = fs.Int("index-k", 0, "neighbors retrieved per indexed reference lookup (0 = pipeline default 32)")
		indexTau     = fs.Float64("index-tau", 0, "approximate-mode pruning slack for non-metric distances (DTW); larger recalls more, 0 prunes hardest")
		driftWindow  = fs.Int("drift-window", 0, "observation window per key for /v1/observe drift detection (0 = default 128)")
		driftHazard  = fs.Float64("drift-hazard", 0, "prior regime-change probability per observation for the drift detector (0 = default 1/100)")
		driftSeason  = fs.Int("drift-season", 0, "seasonal period in observations for cyclic-drift classification (0 = default 24, negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests to finish")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus metrics (/metrics) and pprof profiles (/debug/pprof/) on this address, e.g. :9090")
		traceOut     = fs.String("trace-out", "", "write stage-tracing spans as JSON to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	warmKeys, err := parseWarmKeys(*warm)
	if err != nil {
		fmt.Fprintln(stderr, "wpredd:", err)
		return 2
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(stderr, "wpredd:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "wpredd: debug endpoint on http://%s (metrics: /metrics, pprof: /debug/pprof/)\n", srv.Addr)
	}
	if *traceOut != "" {
		obs.SetTracing(true)
		obs.ResetTrace()
		defer func() {
			if err := obs.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintln(stderr, "wpredd: trace-out:", err)
			}
		}()
	}

	refs, err := loadRefs(*telFile, *skus, *terminals, *runs, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "wpredd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wpredd: reference suite loaded: %d experiments\n", len(refs))

	srv := serve.New(serve.Config{
		Refs:           refs,
		Seed:           *seed,
		RegistryCap:    *registryCap,
		QueueSlots:     *queueSlots,
		MaxBodyBytes:   *maxBody,
		SnapshotDir:    *snapshotDir,
		IndexThreshold: *indexThresh,
		IndexK:         *indexK,
		IndexTau:       *indexTau,
		Drift: drift.Config{
			Window: *driftWindow,
			Hazard: *driftHazard,
			Season: *driftSeason,
		},
	})
	bound, err := srv.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintln(stderr, "wpredd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wpredd: listening on %s (not ready until warmup completes)\n", bound)

	if *snapshotDir != "" {
		restored, skipped, err := srv.RestoreSnapshots()
		if err != nil {
			fmt.Fprintln(stderr, "wpredd:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wpredd: restored %d snapshot(s) from %s, skipped %d\n", restored, *snapshotDir, skipped)
	}

	t0 := time.Now()
	if err := srv.Warmup(warmKeys...); err != nil {
		fmt.Fprintln(stderr, "wpredd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wpredd: warmup trained %d pipeline(s) in %s; ready\n",
		srv.RegistryStats().Fits, time.Since(t0).Round(time.Millisecond))

	<-ctx.Done()
	fmt.Fprintf(stderr, "wpredd: shutdown signal received; draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "wpredd: drain incomplete:", err)
		return 1
	}
	st := srv.RegistryStats()
	fmt.Fprintf(stderr, "wpredd: drained cleanly (registry: %d fits, %d hits, %d misses, %d evictions)\n",
		st.Fits, st.Hits, st.Misses, st.Evictions)
	return 0
}

// parseWarmKeys parses the -warm flag: semicolon-separated
// "selection|metric|model" triples (semicolons, because metric display
// names like "L2,1" contain commas); empty components default.
func parseWarmKeys(s string) ([]serve.Key, error) {
	if s == "" {
		return nil, nil
	}
	var keys []serve.Key
	for _, triple := range strings.Split(s, ";") {
		parts := strings.Split(triple, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf(`-warm: %q is not a "selection|metric|model" triple`, triple)
		}
		keys = append(keys, serve.Key{
			Selection: strings.TrimSpace(parts[0]),
			Metric:    strings.TrimSpace(parts[1]),
			Model:     strings.TrimSpace(parts[2]),
		})
	}
	return keys, nil
}

// loadRefs builds the server's reference suite: externally collected
// telemetry when -telemetry is given, otherwise a simulated profile of
// every standard benchmark across the requested SKUs.
func loadRefs(telFile, skus string, terminals, runs int, seed uint64) ([]*telemetry.Experiment, error) {
	if telFile != "" {
		f, err := os.Open(telFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		refs, err := telemetry.ReadExperiments(f)
		if err != nil {
			return nil, err
		}
		if len(refs) == 0 {
			return nil, fmt.Errorf("no experiments in %s", telFile)
		}
		return refs, nil
	}
	var skuList []wpred.SKU
	for _, tok := range strings.Split(skus, ",") {
		cpus, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || cpus < 1 {
			return nil, fmt.Errorf("-skus: invalid CPU count %q", tok)
		}
		skuList = append(skuList, wpred.SKU{CPUs: cpus, MemoryGB: 8 * cpus})
	}
	if runs < 1 || terminals < 1 {
		return nil, fmt.Errorf("-runs and -terminals must be >= 1")
	}
	src := wpred.NewSource(seed)
	return wpred.GenerateSuite(wpred.ReferenceWorkloads(), skuList, []int{terminals}, runs, src), nil
}
