package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"wpred"
	"wpred/internal/telemetry"
)

// lineWatcher is a threadsafe stderr sink that signals once a line
// matching the pattern appears, so the test can learn the bound address
// of a daemon started with -addr 127.0.0.1:0.
type lineWatcher struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	pattern *regexp.Regexp
	found   chan []string
	done    bool
}

func newLineWatcher(pattern string) *lineWatcher {
	return &lineWatcher{pattern: regexp.MustCompile(pattern), found: make(chan []string, 1)}
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.done {
		if m := w.pattern.FindStringSubmatch(w.buf.String()); m != nil {
			w.done = true
			w.found <- m
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestDaemonLifecycle drives the full wpredd lifecycle through run():
// startup with a small simulated suite, /readyz flipping once warmup
// completes, a successful prediction round trip, and a graceful drain on
// context cancellation (the signal path) with exit code 0.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	stderr := newLineWatcher(`listening on (\S+)`)
	var stdout bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-skus", "2,4",
			"-runs", "1",
			"-terminals", "2",
			"-drain-timeout", "30s",
		}, &stdout, stderr)
	}()

	var addr string
	select {
	case m := <-stderr.found:
		addr = m[1]
	case code := <-exit:
		t.Fatalf("daemon exited early with %d:\n%s", code, stderr.String())
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never started listening:\n%s", stderr.String())
	}

	// Poll /readyz until warmup finishes (the default pipeline fit).
	deadline := time.Now().Add(90 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("/readyz returned unexpected status %d", resp.StatusCode)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// One prediction round trip against the warmed default pipeline.
	src := wpred.NewSource(7)
	ycsb, err := wpred.WorkloadByName("YCSB")
	if err != nil {
		t.Fatal(err)
	}
	targets := wpred.GenerateSuite([]*wpred.Workload{ycsb},
		[]wpred.SKU{{CPUs: 2, MemoryGB: 16}}, []int{2}, 1, src)
	var docs []json.RawMessage
	for _, e := range targets {
		var buf bytes.Buffer
		if err := telemetry.WriteExperiment(&buf, e); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.Bytes())
	}
	body, err := json.Marshal(map[string]any{
		"to_sku": map[string]int{"cpus": 4},
		"target": docs,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/predict status %d: %s", resp.StatusCode, rb)
	}
	var pred struct {
		PredictedThroughput float64 `json:"predicted_throughput"`
	}
	if err := json.Unmarshal(rb, &pred); err != nil || pred.PredictedThroughput <= 0 {
		t.Fatalf("bad prediction body (err=%v): %s", err, rb)
	}

	// Graceful drain: cancelling ctx is exactly what SIGTERM does in main.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after graceful shutdown:\n%s", code, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit after shutdown:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Errorf("drain log line missing:\n%s", stderr.String())
	}
}

// TestDaemonWarmRestart runs two daemon lives against one -snapshot-dir:
// the first trains the default pipeline and persists it on drain; the
// second must restore it and report a warmup with zero fits.
func TestDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-skus", "2,4",
		"-runs", "1",
		"-terminals", "2",
		"-drain-timeout", "30s",
		"-snapshot-dir", dir,
	}

	life := func(wantRestoreLine, wantWarmupLine string) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stderr := newLineWatcher(`; ready`)
		var stdout bytes.Buffer
		exit := make(chan int, 1)
		go func() { exit <- run(ctx, args, &stdout, stderr) }()
		select {
		case <-stderr.found:
		case code := <-exit:
			t.Fatalf("daemon exited early with %d:\n%s", code, stderr.String())
		case <-time.After(120 * time.Second):
			t.Fatalf("daemon never became ready:\n%s", stderr.String())
		}
		cancel()
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("exit code %d:\n%s", code, stderr.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not exit:\n%s", stderr.String())
		}
		for _, want := range []string{wantRestoreLine, wantWarmupLine} {
			if !strings.Contains(stderr.String(), want) {
				t.Errorf("stderr missing %q:\n%s", want, stderr.String())
			}
		}
	}

	life("restored 0 snapshot(s)", "warmup trained 1 pipeline(s)")
	life("restored 1 snapshot(s)", "warmup trained 0 pipeline(s)")
}

// TestFlagValidation covers the daemon's fast-fail argument errors.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad skus", []string{"-skus", "2,zero"}},
		{"bad warm triple", []string{"-warm", "only-two|parts"}},
		{"bad flag", []string{"-no-such-flag"}},
		{"zero runs", []string{"-runs", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // never serve even if validation were to pass
			if code := run(ctx, tc.args, &out, &errb); code == 0 {
				t.Errorf("args %v: exit 0, want non-zero\nstderr: %s", tc.args, errb.String())
			}
		})
	}
}

// TestParseWarmKeys pins the -warm syntax.
func TestParseWarmKeys(t *testing.T) {
	keys, err := parseWarmKeys("RFE LogReg|L2,1|SVM; Variance|Fro|Regression")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", []string{"RFE LogReg × L2,1 × SVM", "Variance × Fro × Regression"})
	got := fmt.Sprintf("%v", []string{keys[0].String(), keys[1].String()})
	if got != want {
		t.Errorf("parseWarmKeys = %s, want %s", got, want)
	}
	if _, err := parseWarmKeys("a|b"); err == nil {
		t.Error("two-part triple should fail")
	}
}
