package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, ns, bytes, allocs, ok := parseBenchLine(
		"BenchmarkDTWDistance/windowed_dependent-8   \t    1000\t   1234.5 ns/op\t  2048 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if name != "BenchmarkDTWDistance/windowed_dependent-8" || ns != 1234.5 || bytes != 2048 || allocs != 12 {
		t.Fatalf("got %q ns=%v B=%v allocs=%v", name, ns, bytes, allocs)
	}

	name, ns, bytes, allocs, ok = parseBenchLine("BenchmarkPlain-4\t500\t99 ns/op")
	if !ok || ns != 99 || bytes != -1 || allocs != -1 {
		t.Fatalf("no-benchmem line: ok=%v ns=%v B=%v allocs=%v", ok, ns, bytes, allocs)
	}
	_ = name

	for _, bad := range []string{
		"ok  \twpred/internal/distance\t0.004s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8 not a number ns/op",
	} {
		if _, _, _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q should not parse", bad)
		}
	}
}

func TestAllocRegressed(t *testing.T) {
	cases := []struct {
		name     string
		old, cur float64
		want     bool
		desc     string
	}{
		{"no benchmem old", -1, 5, false, ""},
		{"no benchmem new", 5, -1, false, ""},
		{"improvement", 10, 8, false, ""},
		{"unchanged", 10, 10, false, ""},
		{"both zero", 0, 0, false, ""},
		{"zero baseline gains alloc", 0, 1, true, "0→1"},
		{"under threshold", 100, 110, false, ""},
		{"over threshold", 100, 150, true, "+50.0%"},
	}
	for _, c := range cases {
		bad, desc := allocRegressed(c.old, c.cur, 20)
		if bad != c.want || desc != c.desc {
			t.Errorf("%s: allocRegressed(%v, %v, 20) = (%v, %q), want (%v, %q)",
				c.name, c.old, c.cur, bad, desc, c.want, c.desc)
		}
	}
}

func TestBytesRegressed(t *testing.T) {
	cases := []struct {
		name     string
		old, cur float64
		want     bool
		desc     string
	}{
		{"no benchmem old", -1, 500, false, ""},
		{"no benchmem new", 500, -1, false, ""},
		{"improvement", 1000, 800, false, ""},
		{"unchanged", 1000, 1000, false, ""},
		{"small baseline small growth", 0, 64, false, ""},
		{"small baseline big growth", 0, 200, true, "0→200 B"},
		{"small baseline just under floor", 48, 112, false, ""},
		{"small baseline over floor", 48, 113, true, "48→113 B"},
		{"under threshold", 1000, 1100, false, ""},
		{"over threshold", 1000, 1500, true, "+50.0%"},
	}
	for _, c := range cases {
		bad, desc := bytesRegressed(c.old, c.cur, 20)
		if bad != c.want || desc != c.desc {
			t.Errorf("%s: bytesRegressed(%v, %v, 20) = (%v, %q), want (%v, %q)",
				c.name, c.old, c.cur, bad, desc, c.want, c.desc)
		}
	}
}

// TestRunDiffBytesGate runs the full diff path: flat ns/op and allocs/op
// but B/op growing past the threshold must fail the gate.
func TestRunDiffBytesGate(t *testing.T) {
	dir := t.TempDir()
	writeSnap := func(name string, bytes float64) string {
		p := filepath.Join(dir, name)
		s := Snapshot{Benchmarks: map[string]Result{
			"BenchmarkFit-8": {Samples: 6, NsPerOp: 1000, BPerOp: bytes, AllocsPerOp: 10},
		}}
		data, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := writeSnap("old.json", 1000)
	newPath := writeSnap("new.json", 1500)

	if err := runDiff(oldPath, newPath, 20); err == nil {
		t.Fatal("B/op growing 50% must fail the gate")
	} else if !strings.Contains(err.Error(), "bytes +50.0%") {
		t.Fatalf("error should name the byte regression, got: %v", err)
	}
	if err := runDiff(oldPath, newPath, 0); err != nil {
		t.Fatalf("threshold 0 is report-only, got: %v", err)
	}
	if err := runDiff(oldPath, oldPath, 20); err != nil {
		t.Fatalf("identical snapshots must pass, got: %v", err)
	}
}

// TestRunDiffAllocGate runs the full diff path: a benchmark whose ns/op is
// flat but whose allocs/op grew from zero must fail the -threshold gate.
func TestRunDiffAllocGate(t *testing.T) {
	dir := t.TempDir()
	writeSnap := func(name string, allocs float64) string {
		p := filepath.Join(dir, name)
		s := Snapshot{Benchmarks: map[string]Result{
			"BenchmarkFit-8": {Samples: 6, NsPerOp: 1000, BPerOp: 0, AllocsPerOp: allocs},
		}}
		data, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldPath := writeSnap("old.json", 0)
	newPath := writeSnap("new.json", 3)

	if err := runDiff(oldPath, newPath, 20); err == nil {
		t.Fatal("zero-alloc baseline gaining 3 allocs/op must fail the gate")
	} else if !strings.Contains(err.Error(), "allocs 0→3") {
		t.Fatalf("error should name the alloc regression, got: %v", err)
	}
	if err := runDiff(oldPath, newPath, 0); err != nil {
		t.Fatalf("threshold 0 is report-only, got: %v", err)
	}
	if err := runDiff(oldPath, oldPath, 20); err != nil {
		t.Fatalf("identical snapshots must pass, got: %v", err)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if got := medianOr(nil, -1); got != -1 {
		t.Fatalf("empty fallback = %v", got)
	}
}
