package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, ns, bytes, allocs, ok := parseBenchLine(
		"BenchmarkDTWDistance/windowed_dependent-8   \t    1000\t   1234.5 ns/op\t  2048 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if name != "BenchmarkDTWDistance/windowed_dependent-8" || ns != 1234.5 || bytes != 2048 || allocs != 12 {
		t.Fatalf("got %q ns=%v B=%v allocs=%v", name, ns, bytes, allocs)
	}

	name, ns, bytes, allocs, ok = parseBenchLine("BenchmarkPlain-4\t500\t99 ns/op")
	if !ok || ns != 99 || bytes != -1 || allocs != -1 {
		t.Fatalf("no-benchmem line: ok=%v ns=%v B=%v allocs=%v", ok, ns, bytes, allocs)
	}
	_ = name

	for _, bad := range []string{
		"ok  \twpred/internal/distance\t0.004s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8 not a number ns/op",
	} {
		if _, _, _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q should not parse", bad)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if got := medianOr(nil, -1); got != -1 {
		t.Fatalf("empty fallback = %v", got)
	}
}
