// Command benchdiff turns `go test -bench` text output into a stable JSON
// snapshot and compares two such snapshots.
//
// Usage:
//
//	go test -bench . -benchmem -count 6 ./... > BENCH.txt
//	benchdiff -parse BENCH.txt -o BENCH.json    # snapshot (median over -count)
//	benchdiff BENCH.json.old BENCH.json         # compare two snapshots
//
// Parsing aggregates repeated runs of the same benchmark (from -count N)
// with the median, which is robust to scheduler noise. Comparison prints
// one row per benchmark present in either file with the ns/op delta; pass
// -threshold P to exit non-zero when any shared benchmark regresses its
// ns/op, allocs/op, OR B/op by more than P percent. Allocation regressions
// on a zero-alloc baseline have no percentage, so any new allocation there
// fails the gate outright — protecting the kernel layer's zero-alloc wins
// behind `make bench-check`. Byte regressions on near-zero baselines
// (< 64 B/op) instead get an absolute 64-byte floor, since a single pooled
// buffer showing up as a few dozen bytes is measurement noise, not a leak.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is the aggregated measurement of one benchmark.
type Result struct {
	// Samples is how many runs were aggregated (the -count value).
	Samples int `json:"samples"`
	// NsPerOp, BPerOp and AllocsPerOp are medians over the samples.
	// BPerOp/AllocsPerOp are -1 when -benchmem was not in effect.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the BENCH.json document: benchmark name → aggregated result.
type Snapshot struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` text output from this file (- for stdin)")
		out       = flag.String("o", "BENCH.json", "with -parse: where to write the JSON snapshot")
		threshold = flag.Float64("threshold", 0, "with two snapshots: exit 1 if any ns/op, allocs/op, or B/op regression exceeds this percent (any alloc increase over a zero-alloc baseline fails; B/op under a 64-byte baseline only fails on a >64-byte increase; 0 = report only)")
	)
	flag.Parse()

	var err error
	switch {
	case *parse != "":
		err = runParse(*parse, *out)
	case flag.NArg() == 2:
		err = runDiff(flag.Arg(0), flag.Arg(1), *threshold)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -parse BENCH.txt [-o BENCH.json] | benchdiff [-threshold P] old.json new.json")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func runParse(in, out string) error {
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
	}

	type samples struct{ ns, bytes, allocs []float64 }
	raw := map[string]*samples{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, ns, bytes, allocs, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		s := raw[name]
		if s == nil {
			s = &samples{}
			raw[name] = s
		}
		s.ns = append(s.ns, ns)
		if bytes >= 0 {
			s.bytes = append(s.bytes, bytes)
			s.allocs = append(s.allocs, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}

	snap := Snapshot{Benchmarks: map[string]Result{}}
	for name, s := range raw {
		snap.Benchmarks[name] = Result{
			Samples:     len(s.ns),
			NsPerOp:     median(s.ns),
			BPerOp:      medianOr(s.bytes, -1),
			AllocsPerOp: medianOr(s.allocs, -1),
		}
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmarks to %s\n", len(snap.Benchmarks), out)
	return nil
}

// parseBenchLine extracts one `BenchmarkX-N  iters  T ns/op [B B/op  A allocs/op]`
// line. bytes and allocs are -1 when -benchmem columns are absent.
func parseBenchLine(line string) (name string, ns, bytes, allocs float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, 0, 0, false
	}
	name = fields[0]
	bytes, allocs = -1, -1
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, 0, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			ns, found = v, true
		case "B/op":
			bytes = v
		case "allocs/op":
			allocs = v
		}
	}
	return name, ns, bytes, allocs, found
}

func runDiff(oldPath, newPath string, threshold float64) error {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}

	names := map[string]bool{}
	for n := range oldSnap.Benchmarks {
		names[n] = true
	}
	for n := range newSnap.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-60s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	regressed := []string{}
	for _, n := range sorted {
		o, inOld := oldSnap.Benchmarks[n]
		nw, inNew := newSnap.Benchmarks[n]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-60s %14s %14.1f %9s %9s\n", n, "-", nw.NsPerOp, "new", allocDelta(-1, nw.AllocsPerOp))
		case !inNew:
			fmt.Fprintf(w, "%-60s %14.1f %14s %9s %9s\n", n, o.NsPerOp, "-", "gone", "")
		default:
			delta := 100 * (nw.NsPerOp - o.NsPerOp) / o.NsPerOp
			fmt.Fprintf(w, "%-60s %14.1f %14.1f %+8.1f%% %9s\n", n, o.NsPerOp, nw.NsPerOp, delta, allocDelta(o.AllocsPerOp, nw.AllocsPerOp))
			if threshold > 0 && delta > threshold {
				regressed = append(regressed, fmt.Sprintf("%s (+%.1f%%)", n, delta))
			}
			if threshold > 0 {
				if bad, desc := allocRegressed(o.AllocsPerOp, nw.AllocsPerOp, threshold); bad {
					regressed = append(regressed, fmt.Sprintf("%s (allocs %s)", n, desc))
				}
				if bad, desc := bytesRegressed(o.BPerOp, nw.BPerOp, threshold); bad {
					regressed = append(regressed, fmt.Sprintf("%s (bytes %s)", n, desc))
				}
			}
		}
	}
	if len(regressed) > 0 {
		w.Flush()
		return fmt.Errorf("%d benchmark(s) regressed past %.1f%%: %s",
			len(regressed), threshold, strings.Join(regressed, ", "))
	}
	return nil
}

// allocRegressed decides whether an allocs/op change fails the gate. Both
// snapshots need -benchmem data (-1 means absent). A benchmark whose
// baseline is zero allocs/op fails on any increase — percentages are
// meaningless against zero, and the zero-alloc steady states are exactly
// the wins the gate exists to protect. Otherwise the same percentage
// threshold as ns/op applies.
func allocRegressed(old, cur, threshold float64) (bad bool, desc string) {
	if old < 0 || cur < 0 || cur <= old {
		return false, ""
	}
	if old == 0 {
		return true, fmt.Sprintf("0→%.0f", cur)
	}
	if pct := 100 * (cur - old) / old; pct > threshold {
		return true, fmt.Sprintf("+%.1f%%", pct)
	}
	return false, ""
}

// bytesRegressed decides whether a B/op change fails the gate. Bytes are
// noisier than allocation counts at the low end — one pooled buffer
// ratcheting or a size-class change shows up as a few dozen bytes — so
// baselines under 64 B/op get an absolute floor: the gate fails only when
// the increase itself exceeds 64 bytes. Larger baselines use the same
// percentage threshold as ns/op.
func bytesRegressed(old, cur, threshold float64) (bad bool, desc string) {
	if old < 0 || cur < 0 || cur <= old {
		return false, ""
	}
	if old < 64 {
		if cur-old > 64 {
			return true, fmt.Sprintf("%.0f→%.0f B", old, cur)
		}
		return false, ""
	}
	if pct := 100 * (cur - old) / old; pct > threshold {
		return true, fmt.Sprintf("+%.1f%%", pct)
	}
	return false, ""
}

func allocDelta(prev, cur float64) string {
	if cur < 0 {
		return ""
	}
	if prev < 0 {
		return fmt.Sprintf("%.0f", cur)
	}
	return fmt.Sprintf("%.0f→%.0f", prev, cur)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianOr(xs []float64, fallback float64) float64 {
	if len(xs) == 0 {
		return fallback
	}
	return median(xs)
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &s, nil
}
