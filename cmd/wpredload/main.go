// Command wpredload is the deterministic load generator for the serving
// tier: it offers a seeded request schedule to a live wpredd (or a
// wpredrouter fleet), measures client-side latency coordinated-omission-
// safely, scrapes the server's /metrics before and after, and writes the
// machine-readable report cmd/slodiff gates against SLO.baseline.json.
//
// Usage:
//
//	wpredload -target http://localhost:8080 -profile quick -o report.json
//	wpredload -target http://localhost:8080 -scrape http://localhost:9090/metrics -profile saturation
//	wpredload -self -profile quick -o SLO.check.json     # in-process server (the `make slo-check` path)
//
// Profiles (quick, steady, saturation, chaos) are built in; flags
// override individual knobs. The same seed always produces the same
// request sequence — the report's schedule_digest proves it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"wpred/internal/bench"
	"wpred/internal/loadgen"
	"wpred/internal/obs"
	"wpred/internal/serve"
	"wpred/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable context and streams, so tests can drive
// the full generator (including the -self in-process server) directly.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wpredload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target  = fs.String("target", "", "base URL of the server under load (wpredd or wpredrouter)")
		self    = fs.Bool("self", false, "ignore -target and load an in-process seeded server (hermetic SLO checks)")
		scrape  = fs.String("scrape", "", "/metrics URL for the two-sided report (with -self the in-process registry is scraped directly)")
		profile = fs.String("profile", "quick", "built-in profile: "+strings.Join(loadgen.BuiltinProfileNames(), ", "))
		out     = fs.String("o", "-", "write the JSON report here (- for stdout)")

		seed     = fs.Uint64("seed", 0, "override the profile's schedule seed (0 keeps the preset)")
		rps      = fs.Float64("rps", 0, "override the open-loop request rate")
		duration = fs.Duration("duration", 0, "override the open-loop schedule horizon")
		conns    = fs.Int("connections", 0, "override the closed-loop connection count")
		requests = fs.Int("requests", 0, "override the closed-loop request count")
		cpus     = fs.Int("target-cpus", 0, "override the prediction's target SKU size")
		retry    = fs.Int("retry-429", -1, "override how many times a 429 is retried before counting as shed")

		queueSlots  = fs.Int("queue", 0, "with -self: the server's admission-queue capacity (0 = server default)")
		registryCap = fs.Int("registry-cap", 0, "with -self: the server's model-registry capacity (0 = server default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, ok := loadgen.BuiltinProfile(*profile)
	if !ok {
		fmt.Fprintf(stderr, "wpredload: unknown profile %q (have: %s)\n", *profile, strings.Join(loadgen.BuiltinProfileNames(), ", "))
		return 2
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *rps > 0 {
		p.RPS = *rps
	}
	if *duration > 0 {
		p.Duration = *duration
	}
	if *conns > 0 {
		p.Connections = *conns
	}
	if *requests > 0 {
		p.Requests = *requests
	}
	if *cpus > 0 {
		p.TargetCPUs = *cpus
	}
	if *retry >= 0 {
		p.Retry429 = *retry
	}

	r := &loadgen.Runner{Profile: p}
	switch {
	case *self:
		// Hermetic mode: a real serve.Server on a loopback port, fed the
		// same simulated reference suite wpredd builds by default, scraped
		// straight from the in-process metrics registry.
		// The SKU ladder must reach the profiles' TargetCPUs: pairwise
		// scaling models need references profiled on the exact target SKU.
		skus := []telemetry.SKU{{CPUs: 2, MemoryGB: 16}, {CPUs: 4, MemoryGB: 32}, {CPUs: 8, MemoryGB: 64}}
		refs := bench.GenerateSuite(bench.Standard()[:3], skus, []int{4}, 2, telemetry.NewSource(p.Seed))
		srv := serve.New(serve.Config{
			Refs: refs, Seed: p.Seed,
			QueueSlots: *queueSlots, RegistryCap: *registryCap,
		})
		addr, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(stderr, "wpredload: self server:", err)
			return 1
		}
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		r.Target = "http://" + addr
		r.Scrape = func() (string, error) {
			var b strings.Builder
			err := obs.Default().WritePrometheus(&b)
			return b.String(), err
		}
		fmt.Fprintf(stderr, "wpredload: self server on %s (%d reference experiments)\n", addr, len(refs))
	case *target != "":
		r.Target = strings.TrimRight(*target, "/")
		if *scrape != "" {
			url := *scrape
			r.Scrape = func() (string, error) {
				m, err := loadgen.ScrapeURL(url)
				if err != nil {
					return "", err
				}
				return renderScrape(m), nil
			}
		}
	default:
		fmt.Fprintln(stderr, "wpredload: need -target URL or -self")
		return 2
	}

	fmt.Fprintf(stderr, "wpredload: profile %s (seed %d, mode %s) against %s\n", p.Name, p.Seed, p.Mode, r.Target)
	rep, err := r.Run(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "wpredload:", err)
		return 1
	}
	summarize(stderr, rep)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "wpredload: encoding report:", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "-" {
		_, err = stdout.Write(blob)
	} else {
		err = os.WriteFile(*out, blob, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "wpredload: writing report:", err)
		return 1
	}
	return 0
}

// renderScrape turns a parsed scrape back into exposition lines so the
// runner's one Scrape contract (text in, parse inside) serves both the
// in-process and the remote paths.
func renderScrape(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %g\n", k, m[k])
	}
	return b.String()
}

// summarize prints the human-readable run digest to stderr; the JSON
// report is the machine-readable artifact.
func summarize(w io.Writer, rep *loadgen.Report) {
	rq := rep.Requests
	fmt.Fprintf(w, "wpredload: %d requests in %.2fs (%.1f rps): %d ok, %d shed, %d client-err, %d server-err, %d transport-err, %d retries\n",
		rq.Sent, rep.WallSeconds, rep.ThroughputRPS, rq.OK, rq.Shed, rq.ClientErr, rq.ServerErr, rq.TransportErr, rq.Retries429)
	fmt.Fprintf(w, "wpredload: latency ms p50=%.2f p90=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		rep.Latency.P50Ms, rep.Latency.P90Ms, rep.Latency.P95Ms, rep.Latency.P99Ms, rep.Latency.MaxMs, rep.Latency.MeanMs)
	fmt.Fprintf(w, "wpredload: schedule digest %s\n", rep.ScheduleDigest)
}
