package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wpred/internal/loadgen"
)

// runLoad drives run() with a short hermetic profile and returns the
// parsed report.
func runLoad(t *testing.T, extra ...string) *loadgen.Report {
	t.Helper()
	out := filepath.Join(t.TempDir(), "report.json")
	args := append([]string{
		"-self", "-profile", "quick",
		"-rps", "50", "-duration", "500ms",
		"-o", out,
	}, extra...)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	return &rep
}

// TestRunSelfQuick exercises the hermetic `make slo-check` path end to
// end: in-process server, short quick profile, JSON report on disk.
func TestRunSelfQuick(t *testing.T) {
	rep := runLoad(t)
	if rep.Requests.Sent != 25 {
		t.Fatalf("sent %d requests, want 25", rep.Requests.Sent)
	}
	if rep.Requests.OK != rep.Requests.Sent {
		t.Fatalf("only %d/%d requests returned 2xx: %+v", rep.Requests.OK, rep.Requests.Sent, rep.Requests.ByStatus)
	}
	if rep.ScheduleDigest == "" {
		t.Fatal("report carries no schedule digest")
	}
	if rep.Server == nil || len(rep.Server.Deltas) == 0 {
		t.Fatal("self mode should scrape the in-process registry into server deltas")
	}

	// Same seed, same sequence — the digest is stable across processes.
	if rep2 := runLoad(t); rep2.ScheduleDigest != rep.ScheduleDigest {
		t.Errorf("digest changed across identical runs: %s vs %s", rep.ScheduleDigest, rep2.ScheduleDigest)
	}
	// A different seed must change the offered sequence.
	if rep3 := runLoad(t, "-seed", "7"); rep3.ScheduleDigest == rep.ScheduleDigest {
		t.Error("seed override did not change the schedule digest")
	}
}

func TestRunBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-profile", "no-such"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown profile exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown profile") {
		t.Errorf("stderr does not name the bad profile: %s", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing target exited %d, want 2", code)
	}
}
