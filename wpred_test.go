package wpred

import "testing"

func TestPublicAPISurface(t *testing.T) {
	if len(WorkloadNames()) != 6 {
		t.Fatalf("WorkloadNames = %v", WorkloadNames())
	}
	if len(ReferenceWorkloads()) != 5 {
		t.Fatal("five standardized reference workloads")
	}
	if len(DefaultSKUs()) != 4 {
		t.Fatal("four default SKUs")
	}
	if len(SelectionStrategies(1)) != 17 {
		t.Fatal("16 strategies + baseline")
	}
	if len(Norms()) != 6 {
		t.Fatal("six matrix norms")
	}
	if len(TimeSeriesMetrics()) != 4 {
		t.Fatal("DTW/LCSS dependent+independent")
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestEndToEndViaPublicAPI(t *testing.T) {
	src := NewSource(42)
	small := SKU{CPUs: 2, MemoryGB: 16}
	large := SKU{CPUs: 8, MemoryGB: 64}

	var refs []*Workload
	for _, w := range ReferenceWorkloads() {
		if w.Name != "YCSB" && w.Name != "TPC-DS" {
			refs = append(refs, w)
		}
	}
	refExps := GenerateSuite(refs, []SKU{small, large}, []int{8}, 3, src)
	// TPC-C 6, Twitter 6, TPC-H (serial) 6.
	if len(refExps) != 18 {
		t.Fatalf("suite = %d experiments", len(refExps))
	}

	p := NewPipeline(PipelineConfig{Seed: 42, Subsamples: 5})
	if err := p.Train(refExps); err != nil {
		t.Fatal(err)
	}

	ycsb, err := WorkloadByName("YCSB")
	if err != nil {
		t.Fatal(err)
	}
	target := GenerateSuite([]*Workload{ycsb}, []SKU{small}, []int{8}, 3, src)
	pred, err := p.Predict(target, large)
	if err != nil {
		t.Fatal(err)
	}
	if pred.NearestReference != "TPC-C" {
		t.Fatalf("nearest = %s, want TPC-C", pred.NearestReference)
	}
	if pred.PredictedThroughput <= pred.ObservedThroughput {
		t.Fatal("2→8 CPU prediction must scale up")
	}

	// Ground truth sanity: within 50%.
	actual := GenerateSuite([]*Workload{ycsb}, []SKU{large}, []int{8}, 1, src)[0].Throughput
	ratio := pred.PredictedThroughput / actual
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("prediction %v vs actual %v", pred.PredictedThroughput, actual)
	}
}

func TestSimulateDeterministicViaPublicAPI(t *testing.T) {
	w, err := WorkloadByName("Twitter")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{SKU: SKU{CPUs: 4, MemoryGB: 32}, Terminals: 8, Ticks: 40}
	a := Simulate(w, cfg, NewSource(9))
	w2, _ := WorkloadByName("Twitter")
	b := Simulate(w2, cfg, NewSource(9))
	if a.Throughput != b.Throughput {
		t.Fatal("public Simulate must be deterministic per seed")
	}
}
